//! Property test: stateful crash recovery under arbitrary seed-derived
//! fault plans with snapshots enabled.
//!
//! Write-tagged requests mutate per-actor versioned state while the plan
//! crashes servers (including, sometimes, the snapshot store's own host)
//! across open snapshot rounds. Whatever the interleaving, the paper-level
//! recovery contract must hold: the durable store's per-actor transition
//! counts equal exactly the writes the cluster executed — zero lost, zero
//! duplicated — and every admitted request still terminates exactly once.

use actop_chaos::{install_plan, FaultPlan};
use actop_runtime::{ActorId, AppLogic, Call, Cluster, Reaction, RuntimeConfig, SnapshotConfig};
use actop_sim::{DetRng, Engine, Nanos};
use proptest::prelude::*;

const ACTORS: u64 = 48;
/// Write tag under the default `write_tags = 0b10` mask.
const TAG_WRITE: u32 = 1;

/// Fan-out app whose depth-limited call trees end in write-tagged leaves:
/// tag 2 fans out into tag-1 calls, tag 1 writes and replies, tag 0 is a
/// read. This keeps writes flowing through both direct submissions and
/// remote sub-calls.
struct FanApp;

impl AppLogic for FanApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        if tag < 2 || !rng.chance(0.6) {
            return Reaction::reply(rng.exp(20_000.0), 100);
        }
        let fan = rng.below(3) + 1;
        let calls = (0..fan)
            .map(|i| Call {
                to: ActorId((actor.0 * 7 + i as u64 * 13 + 1) % ACTORS),
                tag: tag - 1,
                bytes: 200,
            })
            .collect();
        Reaction::fan_out(rng.exp(30_000.0), calls, 150)
    }
}

/// Sum of every actor's durable transition count — the store's view of
/// "writes that happened".
fn restored_version_sum(cluster: &Cluster) -> u64 {
    let store = cluster.snapshot_store().expect("snapshots on");
    (0..ACTORS)
        .map(|a| store.restore(a).map_or(0, |p| p.version))
        .sum()
}

fn run(seed: u64, servers: usize, requests: u16, fault_count: usize, interval_ms: u64) -> Cluster {
    let mut config = RuntimeConfig::paper_testbed(seed);
    config.servers = servers;
    // Requests stranded by a crash terminate through the timeout.
    config.request_timeout = Some(Nanos::from_secs(2));
    config.snapshot = Some(SnapshotConfig {
        interval: Nanos::from_millis(interval_ms),
        capture_window: Nanos::from_millis(interval_ms / 2),
        ..SnapshotConfig::default()
    });
    let mut cluster = Cluster::new(config, Box::new(FanApp));
    let mut engine: Engine<Cluster> = Engine::new();

    // Snapshot rounds and the fault plan race over the same 400 ms.
    let horizon = Nanos::from_millis(400);
    cluster.install_snapshots(&mut engine, horizon);
    let plan = FaultPlan::random(seed, servers as u32, horizon, fault_count);
    install_plan(&mut engine, &cluster, &plan, Nanos::ZERO);

    let mut rng = DetRng::stream(seed, 0xC1);
    for i in 0..requests {
        let actor = ActorId(rng.below(ACTORS as usize) as u64);
        // Alternate fan-out writers and direct writes so crashes land on
        // joins and leaf writes alike.
        let tag = if rng.chance(0.5) { 2 } else { TAG_WRITE };
        engine.schedule(
            Nanos::from_micros(i as u64 * 150),
            move |c: &mut Cluster, e| {
                c.submit_client_request(e, actor, tag, 300);
            },
        );
    }
    engine.run(&mut cluster);
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite invariant: random crash times interleaved with snapshot
    /// rounds never lose or duplicate a state transition.
    #[test]
    fn recovery_loses_and_duplicates_nothing(
        seed in any::<u64>(),
        servers in 3usize..6,
        requests in 50u16..400,
        fault_count in 0usize..8,
        interval_ms in 20u64..80,
    ) {
        let cluster = run(seed, servers, requests, fault_count, interval_ms);
        let m = &cluster.metrics;
        prop_assert_eq!(
            m.completed + m.rejected + m.timed_out,
            m.submitted,
            "requests leaked under snapshots + chaos"
        );
        // No lost, no duplicated transitions: the durable journal agrees
        // byte-for-byte with the writes the cluster executed.
        prop_assert_eq!(
            restored_version_sum(&cluster),
            m.state_writes,
            "durable state diverged from executed writes (plan: {})",
            FaultPlan::random(seed, servers as u32, Nanos::from_millis(400), fault_count).to_text()
        );
        // And the live in-memory view agrees with the durable one (the
        // same check the in-plan crash_restore audits run mid-flight).
        prop_assert_eq!(cluster.state_divergence(), None);
        if fault_count == 0 {
            prop_assert_eq!(m.snap_rounds_aborted, 0, "no crash, no aborted rounds");
        }
    }
}

/// The named crash_restore shape end to end: build state, crash a server,
/// recover it, and let the plan's own audit event verify rehydration.
#[test]
fn crash_restore_shape_audits_rehydration() {
    let mut config = RuntimeConfig::paper_testbed(21);
    config.servers = 4;
    config.request_timeout = Some(Nanos::from_secs(2));
    config.snapshot = Some(SnapshotConfig {
        interval: Nanos::from_millis(50),
        capture_window: Nanos::from_millis(10),
        ..SnapshotConfig::default()
    });
    let mut cluster = Cluster::new(config, Box::new(FanApp));
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_snapshots(&mut engine, Nanos::from_millis(600));
    let plan = FaultPlan::crash_restore(
        2,
        Nanos::from_millis(150),
        Nanos::from_millis(250),
        Nanos::from_millis(500),
    );
    install_plan(&mut engine, &cluster, &plan, Nanos::ZERO);
    let mut rng = DetRng::stream(21, 0xC1);
    for i in 0..600u64 {
        let actor = ActorId(rng.below(ACTORS as usize) as u64);
        engine.schedule(Nanos::from_micros(i * 500), move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, TAG_WRITE, 300);
        });
    }
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert_eq!(m.server_failures, 1);
    assert!(m.restores > 0, "recovery rehydrated state");
    assert_eq!(restored_version_sum(&cluster), m.state_writes);
}
