//! Property test: request conservation under arbitrary seed-derived fault
//! plans, with the failure detector and timed migrations switched on.
//!
//! Whatever faults the plan injects (crashes, recoveries, stragglers, lossy
//! or slow links) and however the detector reacts (suspicion, directory
//! repair, retries), every admitted request must terminate exactly once —
//! `completed + rejected + timed_out == submitted` — and the cluster must
//! fully drain: no leaked join state, no orphaned slab entries, no stage
//! work left behind.

use actop_chaos::{install_plan, FaultPlan};
use actop_runtime::{
    ActorId, AppLogic, Call, Cluster, DetectorConfig, PlacementPolicy, Reaction, RuntimeConfig,
};
use actop_sim::{DetRng, Engine, Nanos};
use proptest::prelude::*;

/// Fan-out app with pseudo-random depth-limited call trees, same shape as
/// the runtime's conservation suite so failures are comparable.
struct FanApp {
    fan_bias: u8,
}

impl AppLogic for FanApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        if tag == 0 || !rng.chance(self.fan_bias as f64 / 255.0) {
            return Reaction::reply(rng.exp(20_000.0), 100);
        }
        let fan = rng.below(3) + 1;
        let calls = (0..fan)
            .map(|i| Call {
                to: ActorId((actor.0 * 7 + i as u64 * 13 + 1) % 48),
                tag: tag - 1,
                bytes: 200,
            })
            .collect();
        Reaction::fan_out(rng.exp(30_000.0), calls, 150)
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    servers: usize,
    fan_bias: u8,
    requests: u16,
    depth: u32,
    fault_count: usize,
    migrations: u8,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        2usize..5,
        0u8..200,
        1u16..120,
        0u32..3,
        0usize..10,
        0u8..6,
    )
        .prop_map(
            |(seed, servers, fan_bias, requests, depth, fault_count, migrations)| Scenario {
                seed,
                servers,
                fan_bias,
                requests,
                depth,
                fault_count,
                migrations,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn requests_are_conserved_under_fault_plans(scenario in arb_scenario()) {
        let mut config = RuntimeConfig::paper_testbed(scenario.seed);
        config.servers = scenario.servers;
        config.placement = PlacementPolicy::Hash;
        // A timeout is mandatory under faults: requests stranded on a host
        // that dies mid-join can only terminate through it.
        config.request_timeout = Some(Nanos::from_secs(2));
        config.detector = Some(DetectorConfig::default());
        config.migration_transfer = Some(Nanos::from_millis(2));
        let mut cluster = Cluster::new(
            config,
            Box::new(FanApp {
                fan_bias: scenario.fan_bias,
            }),
        );
        let mut engine: Engine<Cluster> = Engine::new();

        // Fault plan over the first 400 ms; `random` always heals, so the
        // tail of the run recovers (timeouts mop up anything stranded).
        let horizon = Nanos::from_millis(400);
        let plan = FaultPlan::random(
            scenario.seed,
            scenario.servers as u32,
            horizon,
            scenario.fault_count,
        );
        install_plan(&mut engine, &cluster, &plan, Nanos::ZERO);
        // Heartbeats stop at the horizon so the event queue drains; by then
        // every request has either completed or timed out (2 s timeout).
        cluster.install_heartbeats(&mut engine, Nanos::from_secs(3));

        let depth = scenario.depth;
        let mut rng = DetRng::stream(scenario.seed, 0xC0);
        for i in 0..scenario.requests {
            let actor = ActorId(rng.below(48) as u64);
            engine.schedule(
                Nanos::from_micros(i as u64 * 150),
                move |c: &mut Cluster, e| {
                    c.submit_client_request(e, actor, depth, 300);
                },
            );
        }
        // Explicit migrations racing the fault plan exercise the timed
        // transfer path (commit, abort-on-crash, in-flight dedup).
        let servers = scenario.servers;
        for m in 0..scenario.migrations {
            let actor = ActorId(rng.below(48) as u64);
            let to = rng.below(servers);
            engine.schedule(
                Nanos::from_micros(5_000 + m as u64 * 20_000),
                move |c: &mut Cluster, e| {
                    let now = e.now();
                    c.migrate_actor(e, now, actor, to);
                },
            );
        }

        engine.run(&mut cluster);

        let m = &cluster.metrics;
        prop_assert_eq!(
            m.completed + m.rejected + m.timed_out,
            m.submitted,
            "completed {} rejected {} timed_out {} submitted {} (plan: {})",
            m.completed, m.rejected, m.timed_out, m.submitted, plan.to_text()
        );
        prop_assert!(
            cluster.is_drained(),
            "leaked in-flight state after drain (plan: {})",
            plan.to_text()
        );
        // Shed requests are a subset of rejections.
        prop_assert!(m.shed_no_live <= m.rejected);
        // A plan that never crashes anything can't lose messages to dead
        // hosts, though lossy links may still drop and retry.
        if scenario.fault_count == 0 {
            prop_assert_eq!(m.timed_out, 0, "no faults, nothing may time out");
            prop_assert_eq!(m.net_dropped, 0);
        }
    }
}
