//! Differential test: the indexed event queue against a reference model.
//!
//! The reference is the queue the engine used to have — a `BinaryHeap` with
//! a tombstone set for cancellation — extended with reschedule-as-
//! cancel-plus-push. Both sides consume the same random script of
//! schedule / cancel / reschedule / pop operations; firing order, clock,
//! `events_processed`, and `pending` must agree at every step.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use actop_sim::{Engine, EventId, Nanos};
use proptest::prelude::*;

/// The old tombstone queue, reduced to its ordering semantics: events are
/// plain tags, cancellation inserts a tombstone, reschedule is cancel +
/// fresh push (one sequence number, like `Engine::reschedule`).
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(Nanos, u64, u64)>>,
    cancelled: HashSet<u64>,
    /// Live tag -> (key seq currently in the heap). Tags are stable across
    /// reschedules; the heap entry carries the current seq.
    live: HashMap<u64, (Nanos, u64)>,
    now: Nanos,
    seq: u64,
    processed: u64,
}

impl RefQueue {
    fn schedule(&mut self, tag: u64, at: Nanos) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, tag)));
        self.live.insert(tag, (at, seq));
    }

    fn cancel(&mut self, tag: u64) {
        if let Some((_, seq)) = self.live.remove(&tag) {
            self.cancelled.insert(seq);
        }
    }

    fn reschedule(&mut self, tag: u64, at: Nanos) {
        if let Some((_, seq)) = self.live.remove(&tag) {
            self.cancelled.insert(seq);
            self.schedule(tag, at);
        }
    }

    fn pending(&self) -> usize {
        self.live.len()
    }

    /// Pops the next live event at or before `horizon`, advancing the clock.
    fn pop(&mut self, horizon: Nanos) -> Option<(Nanos, u64)> {
        loop {
            let &Reverse((at, seq, tag)) = self.heap.peek()?;
            if at > horizon {
                return None;
            }
            self.heap.pop();
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.live.remove(&tag);
            self.now = at;
            self.processed += 1;
            return Some((at, tag));
        }
    }
}

/// One step of the random script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule a fresh event `delta` past the current clock (deltas may
    /// be zero to force ties).
    Schedule { delta: u64 },
    /// Cancel the event scheduled `index`-th (mod live count), hitting
    /// both live and already-dead ids.
    Cancel { index: usize },
    /// Reschedule likewise, to `delta` past the clock.
    Reschedule { index: usize, delta: u64 },
    /// Run everything up to `delta` past the current clock.
    PopUpTo { delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0u64..200, 0usize..64).prop_map(|(kind, delta, index)| match kind {
        0 => Op::Schedule { delta },
        1 => Op::Cancel { index },
        2 => Op::Reschedule { index, delta },
        _ => Op::PopUpTo { delta },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn indexed_queue_matches_tombstone_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        // World = log of fired tags; events record their tag on firing.
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut reference = RefQueue::default();
        let mut fired: Vec<u64> = Vec::new();

        // Every id ever issued, in issue order; `Cancel`/`Reschedule`
        // index into this so stale ids get exercised too.
        let mut ids: Vec<(u64, EventId)> = Vec::new();
        let mut next_tag = 0u64;

        for op in ops {
            match op {
                Op::Schedule { delta } => {
                    let tag = next_tag;
                    next_tag += 1;
                    let at = Nanos(engine.now().as_nanos() + delta);
                    let id = engine.schedule(at, move |w: &mut Vec<u64>, _| w.push(tag));
                    reference.schedule(tag, at);
                    ids.push((tag, id));
                }
                Op::Cancel { index } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let (tag, id) = ids[index % ids.len()];
                    engine.cancel(id);
                    reference.cancel(tag);
                }
                Op::Reschedule { index, delta } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let (tag, id) = ids[index % ids.len()];
                    let at = Nanos(engine.now().as_nanos() + delta);
                    engine.reschedule(id, at);
                    reference.reschedule(tag, at);
                }
                Op::PopUpTo { delta } => {
                    let end = Nanos(engine.now().as_nanos() + delta);
                    engine.run_until(&mut fired, end);
                    let mut ref_fired = Vec::new();
                    while let Some((_, tag)) = reference.pop(end) {
                        ref_fired.push(tag);
                    }
                    reference.now = reference.now.max(end);
                    let engine_fired =
                        fired[fired.len() - ref_fired.len().min(fired.len())..].to_vec();
                    prop_assert_eq!(&engine_fired, &ref_fired);
                    prop_assert_eq!(engine.now(), reference.now);
                }
            }
            prop_assert_eq!(engine.pending(), reference.pending());
            prop_assert_eq!(engine.events_processed(), reference.processed);
        }

        // Drain both completely; full firing orders must match.
        let before = fired.len();
        engine.run(&mut fired);
        let mut ref_tail = Vec::new();
        while let Some((_, tag)) = reference.pop(Nanos::MAX) {
            ref_tail.push(tag);
        }
        prop_assert_eq!(&fired[before..], &ref_tail[..]);
        prop_assert_eq!(engine.events_processed(), reference.processed);
        prop_assert_eq!(engine.pending(), 0);
        prop_assert_eq!(reference.pending(), 0);
    }
}
