//! Conservative-parallel windowed execution over sharded worlds.
//!
//! The simulation's servers are partitioned across N *shards*, each with
//! its own [`Engine`] and world state. The network model's deterministic
//! delay floor (`NetworkModel::base_ns`, 250 µs one-way in the datacenter
//! model) is the conservative *lookahead* W: any cross-server effect of an
//! event executed at time `t` lands at `t + W` or later. Time therefore
//! advances in windows `[start, start + W)` — every shard can execute its
//! whole window independently, because nothing another shard does inside
//! the same window can reach it before the window ends.
//!
//! The protocol per window:
//!
//! 1. **Serial phase** (one thread): drain every shard's outbox of
//!    cross-server messages into a staging heap; run the barrier hook
//!    (deterministic application of buffered shared-state effects); run
//!    any *global events* due now (drivers, control agents, fault
//!    injection — they get `&mut` access to every shard); pick the next
//!    window `[start, end)` with `end = min(start + W, next global,
//!    horizon)`; inject staged messages with `at < end` into their target
//!    shards in `(at, src_server, src_seq)` order.
//! 2. **Parallel phase**: every shard runs `Engine::run_before(end)` on
//!    its own thread. No shard touches another shard's state, and shared
//!    state ([`PhaseCell`]) is read-only during this phase.
//!
//! Determinism across shard counts is by construction: window boundaries
//! are a function of global event times and the union of pending event
//! times (both independent of the partitioning); each event executes
//! against state owned by exactly one server; and all cross-server
//! traffic is injected in an order keyed by `(deliver_at, src_server,
//! src_seq)`, never by shard or thread schedule. Running N shards on one
//! thread ([`ConservativeRunner::run_sequential`]) is the *oracle*: the
//! same protocol, zero concurrency, byte-identical results.

use std::cell::UnsafeCell;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::engine::{Engine, EngineReport};
use crate::time::Nanos;

// ---------------------------------------------------------------------
// Phase-gated shared state.
// ---------------------------------------------------------------------

/// Shared state under the window protocol's phase discipline: read by any
/// shard during the parallel phase, written only during the serial phase
/// (when all shards are quiesced at the barrier). The barrier's
/// acquire/release transitions order the accesses.
///
/// Both accessors are `unsafe` because the compiler cannot see the phase
/// discipline; callers assert it.
#[derive(Debug, Default)]
pub struct PhaseCell<T>(UnsafeCell<T>);

// SAFETY: `PhaseCell` hands out `&T` during the parallel phase and
// `&mut T` only during the serial phase; the runner's barriers make those
// phases mutually exclusive and ordered.
unsafe impl<T: Send> Sync for PhaseCell<T> {}

impl<T> PhaseCell<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        PhaseCell(UnsafeCell::new(value))
    }

    /// Shared read access.
    ///
    /// # Safety
    ///
    /// Only call during the parallel phase (no writer exists) or from the
    /// serial phase's single thread.
    pub unsafe fn get(&self) -> &T {
        unsafe { &*self.0.get() }
    }

    /// Exclusive write access.
    ///
    /// # Safety
    ///
    /// Only call from the serial phase's single thread, while no parallel
    /// phase is running and no reference from [`PhaseCell::get`] or
    /// [`PhaseCell::get_mut`] is live.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        unsafe { &mut *self.0.get() }
    }

    /// Consumes the cell.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

// ---------------------------------------------------------------------
// The shard-world contract.
// ---------------------------------------------------------------------

/// A message crossing server boundaries, queued during a window and
/// injected at a later window's opening barrier.
#[derive(Debug, Clone)]
pub struct OutMsg<M> {
    /// Delivery time; must be at least one lookahead past the send time.
    pub at: Nanos,
    /// Sending server (global id) — first injection tie-break.
    pub src_server: u32,
    /// Per-sender monotone sequence — second injection tie-break.
    pub src_seq: u64,
    /// Which shard owns the destination server.
    pub dst_shard: u32,
    /// The payload (carries its own destination server).
    pub msg: M,
}

/// One shard's world: the state of the servers it owns.
///
/// # Safety
///
/// The runner moves shard cells across threads without a `Send` bound on
/// the engine's queued payloads, so implementors promise that every event
/// they schedule into their shard's [`Engine`] captures only `Send` data
/// (function-pointer ticks trivially qualify; boxed closures must not
/// capture `Rc` or other thread-bound state).
pub unsafe trait ShardWorld: Send + Sized + 'static {
    /// The cross-server message type.
    type Msg: Send;

    /// Injects one message at a window-opening barrier. Runs on the
    /// serial thread; must schedule whatever events the delivery implies
    /// at exactly `at`.
    fn deliver(&mut self, engine: &mut Engine<Self>, at: Nanos, msg: Self::Msg);

    /// Moves the shard's pending outbound messages into `sink`. Called
    /// during the serial phase after every window.
    fn drain_outbox(&mut self, sink: &mut Vec<OutMsg<Self::Msg>>);
}

/// One shard: its world plus its event queue.
pub struct ShardCell<W: ShardWorld> {
    pub world: W,
    pub engine: Engine<W>,
}

/// `repr(transparent)` pad so a `&[CellPad<W>]` shared with worker
/// threads can be reborrowed by the serial phase as `&mut [ShardCell<W>]`.
#[repr(transparent)]
struct CellPad<W: ShardWorld>(UnsafeCell<ShardCell<W>>);

// SAFETY: workers touch only their own cells during the parallel phase;
// the serial thread touches any cell only between barriers. `W: Send`
// and the `ShardWorld` contract cover the payloads.
unsafe impl<W: ShardWorld> Sync for CellPad<W> {}

// ---------------------------------------------------------------------
// Barriers.
// ---------------------------------------------------------------------

/// A spinning sense-reversing barrier. Windows are ~microseconds of work
/// per shard (tens of events under a 250 µs lookahead), so parking-based
/// synchronization would dominate; spinning costs nanoseconds. After a
/// bounded spin the waiter yields its timeslice.
///
/// When participants outnumber the machine's cores the spin premise
/// collapses: some participant is always descheduled, the straggler can
/// only run once a spinner gives up its quantum, and `yield_now` on a
/// loaded runqueue is not a reliable handoff — every barrier degenerates
/// into scheduler quanta burned in a loop (2 shards at 0.2× and 8 shards
/// at 0.03× of 1-shard throughput on a single-core box). [`SpinBarrier::new`]
/// therefore auto-selects a spin-then-*park* mode (mutex + condvar) in
/// that regime, where a waiter that missed the short spin blocks until
/// the releaser's broadcast.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    /// Park waiters after a short spin instead of yielding forever —
    /// selected when the participants outnumber the cores.
    park: bool,
    lock: std::sync::Mutex<()>,
    cvar: std::sync::Condvar,
}

/// Spin iterations before a barrier waiter starts yielding.
const SPIN_LIMIT: u32 = 4_096;

/// Spin iterations before an oversubscribed waiter parks. Much shorter
/// than [`SPIN_LIMIT`]: with more runnable threads than cores the release
/// is usually *not* imminent, and every wasted spin is stolen from the
/// thread that would produce it.
const PARK_SPIN_LIMIT: u32 = 128;

impl SpinBarrier {
    /// A barrier for `n` participants, parking automatically when `n`
    /// exceeds the available cores.
    pub fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::with_parking(n, n > cores)
    }

    /// A barrier for `n` participants with the wait mode pinned: `park`
    /// selects spin-then-park, otherwise spin-then-yield.
    pub fn with_parking(n: usize, park: bool) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            park,
            lock: std::sync::Mutex::new(()),
            cvar: std::sync::Condvar::new(),
        }
    }

    /// Blocks until all `n` participants have arrived.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.count.store(0, Ordering::Relaxed);
            if self.park {
                // Publish the new generation under the lock: a parking
                // waiter re-checks it with the lock held, so it cannot
                // miss the broadcast between its check and its wait.
                let _guard = self.lock.lock().expect("barrier mutex poisoned");
                self.generation.fetch_add(1, Ordering::Release);
                self.cvar.notify_all();
            } else {
                self.generation.fetch_add(1, Ordering::Release);
            }
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            if self.park {
                if spins < PARK_SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    let mut guard = self.lock.lock().expect("barrier mutex poisoned");
                    while self.generation.load(Ordering::Acquire) == generation {
                        guard = self.cvar.wait(guard).expect("barrier mutex poisoned");
                    }
                    return;
                }
            } else if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Staging and global events.
// ---------------------------------------------------------------------

struct Staged<M>(OutMsg<M>);

impl<M> Staged<M> {
    fn key(&self) -> (Nanos, u32, u64) {
        (self.0.at, self.0.src_server, self.0.src_seq)
    }
}

impl<M> PartialEq for Staged<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Staged<M> {}
impl<M> PartialOrd for Staged<M> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Staged<M> {
    /// Reversed: `BinaryHeap` is a max-heap and we pop earliest-first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.key().cmp(&self.key())
    }
}

/// A global event's closure: runs on the serial thread with access to
/// every shard.
pub type GlobalFn<W> = Box<dyn FnOnce(&mut GlobalCtx<'_, W>)>;

/// The barrier hook's closure: runs on the serial thread at every window
/// boundary, before due globals.
pub type BarrierHook<W> = Box<dyn FnMut(&mut GlobalCtx<'_, W>)>;

struct GlobalEntry<W: ShardWorld> {
    at: Nanos,
    seq: u64,
    f: GlobalFn<W>,
}

impl<W: ShardWorld> PartialEq for GlobalEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<W: ShardWorld> Eq for GlobalEntry<W> {}
impl<W: ShardWorld> PartialOrd for GlobalEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<W: ShardWorld> Ord for GlobalEntry<W> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// What a global event or barrier hook sees: the current time, every
/// shard, and the ability to schedule further global events.
pub struct GlobalCtx<'a, W: ShardWorld> {
    /// The time this serial phase runs at.
    pub now: Nanos,
    cells: &'a mut [ShardCell<W>],
    queued: Vec<(Nanos, GlobalFn<W>)>,
}

impl<W: ShardWorld> GlobalCtx<'_, W> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Mutable access to one shard.
    pub fn cell(&mut self, shard: usize) -> &mut ShardCell<W> {
        &mut self.cells[shard]
    }

    /// Mutable access to all shards at once.
    pub fn cells(&mut self) -> &mut [ShardCell<W>] {
        self.cells
    }

    /// Schedules another global event. `at` is clamped to now. Only
    /// global events schedule globals (each is a window boundary); shard
    /// events must never create them.
    pub fn schedule_global(&mut self, at: Nanos, f: impl FnOnce(&mut GlobalCtx<'_, W>) + 'static) {
        self.queued.push((at.max(self.now), Box::new(f)));
    }
}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

/// Everything the serial phase owns besides the shard cells themselves —
/// split out so the threaded driver can lend the cells to workers while
/// the coordinator keeps driving this state.
struct RunnerCore<W: ShardWorld> {
    lookahead: Nanos,
    staging: BinaryHeap<Staged<W::Msg>>,
    globals: BinaryHeap<GlobalEntry<W>>,
    global_seq: u64,
    globals_run: u64,
    hook: Option<BarrierHook<W>>,
    now: Nanos,
    serial_ns: u128,
    outbox_scratch: Vec<OutMsg<W::Msg>>,
}

impl<W: ShardWorld> RunnerCore<W> {
    fn enqueue_queued(&mut self, queued: Vec<(Nanos, GlobalFn<W>)>) {
        for (at, f) in queued {
            let seq = self.global_seq;
            self.global_seq += 1;
            self.globals.push(GlobalEntry { at, seq, f });
        }
    }

    /// One serial phase: drain outboxes, run the hook, run due globals,
    /// pick the next window and inject its messages. Returns the window
    /// end, or `None` when nothing remains before `end`.
    fn serial_phase(&mut self, cells: &mut [ShardCell<W>], end: Nanos) -> Option<Nanos> {
        let started = std::time::Instant::now();
        // 1. Drain outboxes into staging.
        let mut scratch = std::mem::take(&mut self.outbox_scratch);
        for cell in cells.iter_mut() {
            cell.world.drain_outbox(&mut scratch);
        }
        for out in scratch.drain(..) {
            debug_assert!(
                out.at >= self.now,
                "cross-server delivery at {} before the barrier at {} — delay under the lookahead?",
                out.at,
                self.now
            );
            self.staging.push(Staged(out));
        }
        self.outbox_scratch = scratch;
        // 2. Barrier hook (buffered shared-state effects).
        if let Some(mut hook) = self.hook.take() {
            let mut ctx = GlobalCtx {
                now: self.now,
                cells,
                queued: Vec::new(),
            };
            hook(&mut ctx);
            let queued = ctx.queued;
            self.enqueue_queued(queued);
            self.hook = Some(hook);
        }
        // 3. Run global events at their exact times until a window opens.
        let window = loop {
            let next_shard = cells.iter().filter_map(|c| c.engine.next_event_at()).min();
            let next_staged = self.staging.peek().map(|s| s.0.at);
            let next_global = self.globals.peek().map(|g| g.at);
            let candidates = [next_shard, next_staged, next_global];
            let Some(next) = candidates.iter().flatten().min().copied() else {
                break None;
            };
            if next >= end {
                break None;
            }
            if next_global == Some(next) {
                // Run every global due at `next`. Globals run before any
                // shard event at the same timestamp, and may enqueue more
                // at the same instant (picked up here in seq order).
                self.now = next;
                // A barrier at `next` means every shard reached `next`:
                // advance idle engines (no shard event is due before
                // `next`, so nothing fires) so serial-phase handlers that
                // read a cell's clock — thread reallocation, stage stats —
                // see the global's time, not a stale window end.
                for cell in cells.iter_mut() {
                    cell.engine.run_before(&mut cell.world, next);
                }
                while self.globals.peek().map(|g| g.at) == Some(next) {
                    let entry = self.globals.pop().expect("peeked");
                    self.globals_run += 1;
                    let mut ctx = GlobalCtx {
                        now: next,
                        cells,
                        queued: Vec::new(),
                    };
                    (entry.f)(&mut ctx);
                    let queued = ctx.queued;
                    self.enqueue_queued(queued);
                }
                continue;
            }
            // A window [next, window_end): capped by the lookahead, the
            // next global event, and the horizon.
            let cap = next.checked_add(self.lookahead).unwrap_or(Nanos::MAX);
            let mut window_end = cap.min(end);
            if let Some(g) = self.globals.peek().map(|g| g.at) {
                window_end = window_end.min(g);
            }
            debug_assert!(window_end > next);
            // 4. Inject staged messages due inside the window, in
            // (at, src_server, src_seq) order. Injection happens before
            // the window executes, so injected events take engine seq
            // numbers ahead of anything scheduled during the window — a
            // partition-independent order.
            while self.staging.peek().is_some_and(|s| s.0.at < window_end) {
                let Staged(out) = self.staging.pop().expect("peeked");
                let cell = &mut cells[out.dst_shard as usize];
                cell.world.deliver(&mut cell.engine, out.at, out.msg);
            }
            break Some(window_end);
        };
        self.serial_ns += started.elapsed().as_nanos();
        match window {
            Some(window_end) => self.now = window_end,
            None => self.now = self.now.max(end),
        }
        window
    }
}

/// The conservative windowed runner over `N` shards. Construct, install
/// initial events (via [`ConservativeRunner::cells_mut`] and
/// [`ConservativeRunner::schedule_global`]), then drive with
/// [`ConservativeRunner::run_until`].
pub struct ConservativeRunner<W: ShardWorld> {
    cells: Vec<ShardCell<W>>,
    core: RunnerCore<W>,
    /// Wall-clock spanned by `run_until` calls (includes barrier and
    /// serial-phase overhead, unlike the per-shard engine numbers).
    wall_ns: u128,
}

impl<W: ShardWorld> ConservativeRunner<W> {
    /// Builds a runner over the given shard worlds with conservative
    /// lookahead `lookahead` (the network delay floor).
    pub fn new(worlds: Vec<W>, lookahead: Nanos) -> Self {
        assert!(
            lookahead > Nanos::ZERO,
            "conservative lookahead must be positive"
        );
        assert!(!worlds.is_empty(), "need at least one shard");
        ConservativeRunner {
            cells: worlds
                .into_iter()
                .map(|world| ShardCell {
                    world,
                    engine: Engine::new(),
                })
                .collect(),
            core: RunnerCore {
                lookahead,
                staging: BinaryHeap::new(),
                globals: BinaryHeap::new(),
                global_seq: 0,
                globals_run: 0,
                hook: None,
                now: Nanos::ZERO,
                serial_ns: 0,
                outbox_scratch: Vec::new(),
            },
            wall_ns: 0,
        }
    }

    /// Current simulation time (the last window boundary reached).
    pub fn now(&self) -> Nanos {
        self.core.now
    }

    /// The conservative lookahead.
    pub fn lookahead(&self) -> Nanos {
        self.core.lookahead
    }

    /// The shards, for installation and post-run inspection.
    pub fn cells_mut(&mut self) -> &mut [ShardCell<W>] {
        &mut self.cells
    }

    /// The shards, read-only.
    pub fn cells(&self) -> &[ShardCell<W>] {
        &self.cells
    }

    /// Consumes the runner, returning the shard worlds.
    pub fn into_worlds(self) -> Vec<W> {
        self.cells.into_iter().map(|c| c.world).collect()
    }

    /// Schedules a global event (serial-phase, all-shard access) at `at`.
    pub fn schedule_global(&mut self, at: Nanos, f: impl FnOnce(&mut GlobalCtx<'_, W>) + 'static) {
        let seq = self.core.global_seq;
        self.core.global_seq += 1;
        self.core.globals.push(GlobalEntry {
            at: at.max(self.core.now),
            seq,
            f: Box::new(f),
        });
    }

    /// Installs the barrier hook, run once per serial phase after the
    /// outboxes drain — the place to apply buffered shared-state effects
    /// in a deterministic order.
    pub fn set_barrier_hook(&mut self, hook: impl FnMut(&mut GlobalCtx<'_, W>) + 'static) {
        self.core.hook = Some(Box::new(hook));
    }

    /// Merged engine report: per-shard counters summed, wall-clock set to
    /// the runner's own elapsed span (barriers included), CPU the sum of
    /// the shard loops plus the serial phases. Global events count as
    /// events.
    pub fn report(&self) -> EngineReport {
        let mut merged = EngineReport::default();
        for cell in &self.cells {
            merged.merge(&cell.engine.report());
        }
        merged.events_processed += self.core.globals_run;
        merged.wall_ns = self.wall_ns;
        merged.cpu_ns += self.core.serial_ns;
        merged
    }

    /// Runs the protocol on the calling thread only — the single-thread
    /// oracle: identical results to any threaded run, no concurrency.
    pub fn run_sequential(&mut self, end: Nanos) {
        let started = std::time::Instant::now();
        while let Some(window_end) = self.core.serial_phase(&mut self.cells, end) {
            for cell in &mut self.cells {
                cell.engine.run_before(&mut cell.world, window_end);
            }
        }
        for cell in &mut self.cells {
            // Advance quiesced shards' clocks to the horizon.
            cell.engine.run_before(&mut cell.world, end);
        }
        self.wall_ns += started.elapsed().as_nanos();
    }

    /// Runs the protocol with `threads` worker threads (shards are dealt
    /// round-robin across workers). `threads <= 1` — or a machine with a
    /// single core, where worker threads could only interleave through the
    /// scheduler and every barrier would cost quanta instead of
    /// nanoseconds — falls back to the sequential oracle. Results are
    /// byte-identical either way.
    pub fn run_until(&mut self, end: Nanos, threads: usize) {
        let workers = threads.min(self.cells.len());
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if workers <= 1 || cores == 1 {
            return self.run_sequential(end);
        }
        let started = std::time::Instant::now();
        let n = self.cells.len();
        let pads: Vec<CellPad<W>> = std::mem::take(&mut self.cells)
            .into_iter()
            .map(|c| CellPad(UnsafeCell::new(c)))
            .collect();
        let window_end = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let start_barrier = SpinBarrier::new(workers);
        let end_barrier = SpinBarrier::new(workers);
        let core = &mut self.core;
        std::thread::scope(|scope| {
            for w in 1..workers {
                let (pads, window_end) = (&pads, &window_end);
                let (stop, start_barrier, end_barrier) = (&stop, &start_barrier, &end_barrier);
                scope.spawn(move || loop {
                    start_barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let horizon = Nanos(window_end.load(Ordering::Acquire));
                    for pad in pads.iter().skip(w).step_by(workers) {
                        // SAFETY: between the start and end barriers,
                        // worker `w` exclusively owns shards w, w+k, ...
                        let cell = unsafe { &mut *pad.0.get() };
                        cell.engine.run_before(&mut cell.world, horizon);
                    }
                    end_barrier.wait();
                });
            }
            // Coordinator (this thread): serial phases while the workers
            // are parked, plus the worker-0 share of each parallel phase.
            loop {
                // SAFETY: every worker is parked at `start_barrier`, so
                // the serial phase has exclusive access to all cells.
                // `CellPad` is repr(transparent) over `ShardCell`.
                let cells: &mut [ShardCell<W>] = unsafe {
                    std::slice::from_raw_parts_mut(pads.as_ptr() as *mut ShardCell<W>, n)
                };
                match core.serial_phase(cells, end) {
                    None => {
                        stop.store(true, Ordering::Release);
                        start_barrier.wait();
                        break;
                    }
                    Some(horizon) => {
                        window_end.store(horizon.as_nanos(), Ordering::Release);
                        start_barrier.wait();
                        for pad in pads.iter().step_by(workers) {
                            // SAFETY: the worker-0 share of the parallel
                            // phase; no other thread touches these cells.
                            let cell = unsafe { &mut *pad.0.get() };
                            cell.engine.run_before(&mut cell.world, horizon);
                        }
                        end_barrier.wait();
                    }
                }
            }
        });
        self.cells = pads.into_iter().map(|p| p.0.into_inner()).collect();
        for cell in &mut self.cells {
            cell.engine.run_before(&mut cell.world, end);
        }
        self.wall_ns += started.elapsed().as_nanos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A toy sharded world: nine logical servers dealt round-robin across
    /// shards. Each "visit" event logs `(time, tag)` at its server and
    /// forwards a decremented tag to another server one lookahead later
    /// (plus tag-dependent jitter), so chains cross shard boundaries
    /// constantly; some visits also schedule a purely local follow-up
    /// inside the window. The per-server logs are the ground truth that
    /// must not depend on the shard count or thread count.
    const LOOKAHEAD: Nanos = Nanos(250_000);
    const SERVERS: u32 = 9;

    struct ToyMsg {
        dst_server: u32,
        tag: u64,
    }

    struct ToyShard {
        shards: u32,
        logs: BTreeMap<u32, Vec<(u64, u64)>>,
        outbox: Vec<OutMsg<ToyMsg>>,
        out_seq: BTreeMap<u32, u64>,
    }

    fn shard_of(server: u32, shards: u32) -> u32 {
        server % shards
    }

    fn pack(server: u32, tag: u64) -> u64 {
        (u64::from(server) << 32) | tag
    }

    fn visit(w: &mut ToyShard, e: &mut Engine<ToyShard>, data: u64) {
        let server = (data >> 32) as u32;
        let tag = data & 0xffff_ffff;
        let now = e.now();
        w.logs
            .get_mut(&server)
            .expect("event routed to a shard that does not own the server")
            .push((now.as_nanos(), tag));
        if tag > 0 {
            let dst_server = ((u64::from(server) + tag) % u64::from(SERVERS)) as u32;
            let seq = w.out_seq.entry(server).or_insert(0);
            *seq += 1;
            w.outbox.push(OutMsg {
                at: now + LOOKAHEAD + Nanos((tag * 17) % 1_000),
                src_server: server,
                src_seq: *seq,
                dst_shard: shard_of(dst_server, w.shards),
                msg: ToyMsg {
                    dst_server,
                    tag: tag - 1,
                },
            });
            if tag.is_multiple_of(3) {
                e.schedule_tick(now + Nanos(5), mark, pack(server, 1_000 + tag));
            }
        }
    }

    fn mark(w: &mut ToyShard, e: &mut Engine<ToyShard>, data: u64) {
        let server = (data >> 32) as u32;
        let tag = data & 0xffff_ffff;
        w.logs
            .get_mut(&server)
            .unwrap()
            .push((e.now().as_nanos(), tag));
    }

    unsafe impl ShardWorld for ToyShard {
        type Msg = ToyMsg;

        fn deliver(&mut self, engine: &mut Engine<Self>, at: Nanos, msg: ToyMsg) {
            engine.schedule_tick(at, visit, pack(msg.dst_server, msg.tag));
        }

        fn drain_outbox(&mut self, sink: &mut Vec<OutMsg<ToyMsg>>) {
            sink.append(&mut self.outbox);
        }
    }

    fn build(shards: u32) -> ConservativeRunner<ToyShard> {
        let worlds = (0..shards)
            .map(|sh| ToyShard {
                shards,
                logs: (0..SERVERS)
                    .filter(|s| shard_of(*s, shards) == sh)
                    .map(|s| (s, Vec::new()))
                    .collect(),
                outbox: Vec::new(),
                out_seq: BTreeMap::new(),
            })
            .collect();
        let mut runner = ConservativeRunner::new(worlds, LOOKAHEAD);
        for s in 0..SERVERS {
            let sh = shard_of(s, shards) as usize;
            runner.cells_mut()[sh].engine.schedule_tick(
                Nanos(1_000 * u64::from(s + 1)),
                visit,
                pack(s, 12),
            );
        }
        runner
    }

    /// A recurring global event: stamps every server's log, then
    /// reschedules itself `remaining` more times.
    fn global_stamp(ctx: &mut GlobalCtx<'_, ToyShard>, remaining: u64) {
        let now = ctx.now.as_nanos();
        for cell in ctx.cells() {
            for log in cell.world.logs.values_mut() {
                log.push((now, 9_999));
            }
        }
        if remaining > 0 {
            let at = ctx.now + Nanos(700_000);
            ctx.schedule_global(at, move |ctx| global_stamp(ctx, remaining - 1));
        }
    }

    /// Per-server `(time, tag)` logs, keyed by server id.
    type ServerLogs = Vec<(u32, Vec<(u64, u64)>)>;

    fn run_and_collect(shards: u32, threads: usize) -> (ServerLogs, u64) {
        let mut runner = build(shards);
        runner.schedule_global(Nanos(500_000), |ctx| global_stamp(ctx, 3));
        runner.run_until(Nanos::from_millis(200), threads);
        let events = runner.report().events_processed;
        let mut logs: ServerLogs = Vec::new();
        for world in runner.into_worlds() {
            for (s, log) in world.logs {
                logs.push((s, log));
            }
        }
        logs.sort_by_key(|(s, _)| *s);
        (logs, events)
    }

    #[test]
    fn logs_identical_across_shard_counts() {
        let (base, base_events) = run_and_collect(1, 1);
        let entries: usize = base.iter().map(|(_, l)| l.len()).sum();
        assert!(entries > 100, "toy run too small to be meaningful");
        for shards in [2u32, 3, 4, 9] {
            let (logs, events) = run_and_collect(shards, 1);
            assert_eq!(logs, base, "shards={shards} diverged from 1-shard oracle");
            assert_eq!(events, base_events, "shards={shards} event count diverged");
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let (base, base_events) = run_and_collect(4, 1);
        for threads in [2usize, 4, 8] {
            let (logs, events) = run_and_collect(4, threads);
            assert_eq!(logs, base, "threads={threads} diverged from sequential");
            assert_eq!(
                events, base_events,
                "threads={threads} event count diverged"
            );
        }
    }

    #[test]
    fn globals_run_before_shard_events_at_the_same_instant() {
        let mut runner = build(2);
        // Server 0's first visit fires at exactly 1_000; a global stamped
        // at the same instant must land in the log first.
        runner.schedule_global(Nanos(1_000), |ctx| global_stamp(ctx, 0));
        runner.run_until(Nanos::from_millis(1), 1);
        let worlds = runner.into_worlds();
        let log = &worlds[0].logs[&0];
        assert_eq!(log[0], (1_000, 9_999), "global must precede the visit");
        assert_eq!(log[1], (1_000, 12));
    }

    #[test]
    fn staged_messages_inject_in_source_order() {
        // Two servers on different shards send to the same destination at
        // the same delivery time; injection order must follow src_server
        // then src_seq, not shard iteration or drain order.
        struct Probe {
            log: Vec<(u32, u64)>,
            outbox: Vec<OutMsg<(u32, u64)>>,
        }
        fn record(w: &mut Probe, _e: &mut Engine<Probe>, data: u64) {
            w.log.push(((data >> 32) as u32, data & 0xffff_ffff));
        }
        unsafe impl ShardWorld for Probe {
            type Msg = (u32, u64);
            fn deliver(&mut self, engine: &mut Engine<Self>, at: Nanos, msg: (u32, u64)) {
                engine.schedule_tick(at, record, (u64::from(msg.0) << 32) | msg.1);
            }
            fn drain_outbox(&mut self, sink: &mut Vec<OutMsg<(u32, u64)>>) {
                sink.append(&mut self.outbox);
            }
        }
        let probe = || Probe {
            log: Vec::new(),
            outbox: Vec::new(),
        };
        let mut runner = ConservativeRunner::new(vec![probe(), probe()], LOOKAHEAD);
        let at = Nanos(300_000);
        // Pushed out of order on shard 1; shard 0 sends the middle one.
        runner.cells_mut()[1].world.outbox.extend([
            OutMsg {
                at,
                src_server: 5,
                src_seq: 2,
                dst_shard: 0,
                msg: (5, 2),
            },
            OutMsg {
                at,
                src_server: 5,
                src_seq: 1,
                dst_shard: 0,
                msg: (5, 1),
            },
        ]);
        runner.cells_mut()[0].world.outbox.push(OutMsg {
            at,
            src_server: 2,
            src_seq: 7,
            dst_shard: 0,
            msg: (2, 7),
        });
        runner.run_until(Nanos::from_millis(1), 1);
        let worlds = runner.into_worlds();
        assert_eq!(worlds[0].log, vec![(2, 7), (5, 1), (5, 2)]);
    }

    #[test]
    fn report_merges_shard_work() {
        let mut runner = build(3);
        runner.schedule_global(Nanos(500_000), |ctx| global_stamp(ctx, 1));
        runner.run_until(Nanos::from_millis(50), 1);
        let report = runner.report();
        assert!(report.events_processed > 2, "globals count as events");
        assert!(report.wall_ns > 0);
        assert!(report.cpu_ns > 0);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        for park in [false, true] {
            let barrier = SpinBarrier::with_parking(4, park);
            let counter = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for round in 1..=50usize {
                            counter.fetch_add(1, Ordering::AcqRel);
                            barrier.wait();
                            assert_eq!(counter.load(Ordering::Acquire), round * 4);
                            barrier.wait();
                        }
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Acquire), 200, "park={park}");
        }
    }

    #[test]
    fn parking_barrier_survives_heavy_oversubscription() {
        // More participants than any test box has cores: with the yield
        // loop this burns scheduler quanta; with parking it completes
        // promptly. Correctness (not timing) is the assertion.
        let n = 32;
        let barrier = SpinBarrier::with_parking(n, true);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    for _ in 0..20 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        assert!(counter.load(Ordering::Acquire).is_multiple_of(n));
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), n * 20);
    }
}
