//! Processor-sharing CPU model with a context-switch penalty.
//!
//! Each simulated server owns one [`PsCpu`]. Threads that are executing the
//! compute phase of an event are *runnable tasks*; the OS scheduler is
//! modeled as egalitarian processor sharing across `p` cores: with `n`
//! runnable tasks each progresses at rate `min(1, p_eff / n)` where
//!
//! ```text
//! p_eff = p / (1 + kappa * max(0, T - p))
//! ```
//!
//! and `T` is the *configured* thread count across all of the server's
//! stage pools ([`PsCpu::set_configured_threads`]). `kappa` is the
//! multithreading-overhead coefficient: a server configured with more
//! threads than cores loses part of its CPU to context switching, timer and
//! scheduler bookkeeping, and cache pressure — whether or not every thread
//! is busy at this instant. This is the mechanism behind two of the paper's
//! observations: the Fig. 5 heatmap (over-allocating threads to SEDA stages
//! *increases* latency) and the `eta` thread-count regularizer in the
//! allocation objective (*).
//!
//! The model also makes the paper's §5.4 estimation assumption hold by
//! construction: the ready-time-to-compute-time ratio `r_i / x_i` is the
//! same for every stage on a server, because slowdown under processor
//! sharing is uniform across runnable threads.
//!
//! [`PsCpu`] is passive: the owner advances it to the current time, adds
//! tasks, asks for the next provisional completion instant, and schedules or
//! cancels engine events accordingly.

use crate::time::Nanos;

/// Identifier of a task running on a [`PsCpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuTaskId(u64);

#[derive(Debug, Clone)]
struct Task {
    id: CpuTaskId,
    /// Remaining pure-CPU demand in nanoseconds.
    remaining: f64,
}

/// Processor-sharing CPU with `cores` cores and a context-switch penalty.
#[derive(Debug, Clone)]
pub struct PsCpu {
    cores: f64,
    ctx_coeff: f64,
    /// Total threads configured across the server's stage pools.
    configured_threads: usize,
    /// True while the CPU is stalled by a stop-the-world pause (GC).
    paused: bool,
    /// Service-rate multiplier (1.0 = healthy). Fault injection models CPU
    /// stragglers and gray failures by scaling every task's progress rate:
    /// the server keeps accepting work but services it at `rate_factor`
    /// speed.
    rate_factor: f64,
    tasks: Vec<Task>,
    last_update: Nanos,
    next_id: u64,
    /// Integral of occupied cores over time, in core-nanoseconds.
    busy_core_ns: f64,
    completed: Vec<CpuTaskId>,
}

/// Residual demand below this many nanoseconds counts as completed.
const DONE_EPS: f64 = 1e-3;

impl PsCpu {
    /// Creates a CPU with the given core count and context-switch
    /// coefficient (`kappa`, slowdown per runnable thread beyond the core
    /// count; `0.0` disables the penalty).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `ctx_coeff < 0`.
    pub fn new(cores: usize, ctx_coeff: f64) -> Self {
        assert!(cores > 0, "server needs at least one core");
        assert!(ctx_coeff >= 0.0, "negative context-switch coefficient");
        PsCpu {
            cores: cores as f64,
            ctx_coeff,
            configured_threads: cores,
            paused: false,
            rate_factor: 1.0,
            tasks: Vec::new(),
            last_update: Nanos::ZERO,
            next_id: 0,
            busy_core_ns: 0.0,
            completed: Vec::new(),
        }
    }

    /// Updates the total configured thread count (applies progress at the
    /// old rate first). The owner must re-arm its completion event
    /// afterwards, as pending completion times change.
    pub fn set_configured_threads(&mut self, now: Nanos, total: usize) {
        self.advance(now);
        self.configured_threads = total;
    }

    /// Total configured threads.
    pub fn configured_threads(&self) -> usize {
        self.configured_threads
    }

    /// The effective core capacity under the current thread configuration.
    pub fn effective_cores(&self) -> f64 {
        let extra = (self.configured_threads as f64 - self.cores).max(0.0);
        self.cores / (1.0 + self.ctx_coeff * extra)
    }

    /// Begins a stop-the-world pause (e.g. a garbage collection): no task
    /// makes progress until [`PsCpu::resume`], and the cores count as busy
    /// (the collector is using them). The owner must re-arm its completion
    /// event — [`PsCpu::next_completion`] returns `None` while paused.
    pub fn pause(&mut self, now: Nanos) {
        self.advance(now);
        self.paused = true;
    }

    /// Ends a stop-the-world pause.
    pub fn resume(&mut self, now: Nanos) {
        self.advance(now);
        self.paused = false;
    }

    /// Sets the service-rate multiplier (applies progress at the old rate
    /// first). `1.0` restores a healthy CPU; values below `1.0` model a
    /// straggler, values near zero a gray failure. The owner must re-arm
    /// its completion event afterwards, as pending completion times change.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn set_rate_factor(&mut self, now: Nanos, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid rate factor {factor}"
        );
        self.advance(now);
        self.rate_factor = factor;
    }

    /// The current service-rate multiplier.
    pub fn rate_factor(&self) -> f64 {
        self.rate_factor
    }

    /// True while a stop-the-world pause is in effect.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Number of physical cores.
    pub fn cores(&self) -> usize {
        self.cores as usize
    }

    /// Number of currently runnable tasks.
    pub fn runnable(&self) -> usize {
        self.tasks.len()
    }

    /// Per-task progress rate (fraction of a dedicated core) with `n`
    /// runnable tasks: `p_eff / max(n, p)`. The `max` term means the
    /// multithreading tax slows *every* task — even a lone one — not just
    /// saturated servers: scheduler wakeup latency and cache pressure from
    /// an oversized thread pool are paid per event, which is why the
    /// paper's Fig. 5 shows over-threading hurting latency well below
    /// saturation.
    fn rate_with(&self, n: usize) -> f64 {
        if n == 0 || self.paused {
            return 0.0;
        }
        self.rate_factor * self.effective_cores() / (n as f64).max(self.cores)
    }

    /// Current per-task progress rate.
    pub fn rate(&self) -> f64 {
        self.rate_with(self.tasks.len())
    }

    /// The current slowdown factor: wall-clock time per unit of CPU demand.
    /// Equals `1.0` when a task has a dedicated core.
    pub fn slowdown(&self) -> f64 {
        let r = self.rate();
        if r == 0.0 {
            1.0
        } else {
            1.0 / r
        }
    }

    /// Advances internal state to `now`, applying progress to all runnable
    /// tasks and moving finished tasks to the completed list.
    ///
    /// Completion boundaries inside the interval are handled exactly: when a
    /// task finishes partway through, the remaining tasks speed up for the
    /// rest of the interval, so callers may advance by arbitrary spans.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last update.
    pub fn advance(&mut self, now: Nanos) {
        assert!(now >= self.last_update, "PsCpu time went backwards");
        let mut dt = (now - self.last_update).as_nanos() as f64;
        self.last_update = now;
        while dt > 0.0 && !self.tasks.is_empty() {
            let n = self.tasks.len();
            let rate = self.rate_with(n);
            let min_rem = self
                .tasks
                .iter()
                .map(|t| t.remaining)
                .fold(f64::INFINITY, f64::min);
            // Time until the earliest completion at the current rate.
            let boundary = min_rem / rate;
            let step = boundary.min(dt);
            let occupied = (n as f64).min(self.cores);
            self.busy_core_ns += occupied * step;
            let progress = rate * step;
            let mut i = 0;
            while i < self.tasks.len() {
                self.tasks[i].remaining -= progress;
                if self.tasks[i].remaining <= DONE_EPS {
                    let task = self.tasks.swap_remove(i);
                    self.completed.push(task.id);
                } else {
                    i += 1;
                }
            }
            dt -= step;
        }
        // Keep completion order deterministic despite swap_remove.
        self.completed.sort_unstable();
    }

    /// Adds a task with `demand_ns` nanoseconds of pure-CPU work. The caller
    /// must have advanced the CPU to `now` first (this method does so
    /// defensively).
    ///
    /// A zero-demand task completes immediately and is reported by the next
    /// [`PsCpu::take_completed`] call.
    pub fn add(&mut self, now: Nanos, demand_ns: f64) -> CpuTaskId {
        assert!(
            demand_ns.is_finite() && demand_ns >= 0.0,
            "invalid CPU demand {demand_ns}"
        );
        self.advance(now);
        let id = CpuTaskId(self.next_id);
        self.next_id += 1;
        if demand_ns <= DONE_EPS {
            self.completed.push(id);
        } else {
            self.tasks.push(Task {
                id,
                remaining: demand_ns,
            });
        }
        id
    }

    /// Removes and returns the tasks that completed up to the last
    /// [`PsCpu::advance`].
    pub fn take_completed(&mut self, now: Nanos) -> Vec<CpuTaskId> {
        self.advance(now);
        std::mem::take(&mut self.completed)
    }

    /// The instant at which the next task will complete if the runnable set
    /// does not change, or `None` when idle. Always strictly later than the
    /// last update (times are rounded up to whole nanoseconds).
    pub fn next_completion(&self) -> Option<Nanos> {
        let rate = self.rate();
        let min_rem = self
            .tasks
            .iter()
            .map(|t| t.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_rem.is_finite() || rate <= 0.0 {
            return None;
        }
        let dt = (min_rem / rate).ceil().max(1.0) as u64;
        Some(self.last_update + Nanos(dt))
    }

    /// Integral of occupied cores over time (core-nanoseconds) since
    /// construction. Utilization over a window is the difference of two
    /// snapshots divided by `cores * window`.
    pub fn busy_core_ns(&self) -> f64 {
        self.busy_core_ns
    }

    /// Utilization in `[0, 1]` over `[since, now]`, given a snapshot of
    /// [`PsCpu::busy_core_ns`] taken at `since`.
    pub fn utilization_since(&self, busy_at_since: f64, since: Nanos, now: Nanos) -> f64 {
        let window = (now.saturating_sub(since)).as_nanos() as f64;
        if window == 0.0 {
            return 0.0;
        }
        ((self.busy_core_ns - busy_at_since) / (self.cores * window)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn single_task_runs_at_full_rate() {
        let mut cpu = PsCpu::new(4, 0.0);
        cpu.add(Nanos::ZERO, 1e6); // 1 ms of CPU.
        assert_eq!(cpu.next_completion(), Some(ms(1)));
        let done = cpu.take_completed(ms(1));
        assert_eq!(done.len(), 1);
        assert_eq!(cpu.runnable(), 0);
    }

    #[test]
    fn fewer_tasks_than_cores_no_slowdown() {
        let mut cpu = PsCpu::new(4, 0.5);
        for _ in 0..4 {
            cpu.add(Nanos::ZERO, 1e6);
        }
        assert!((cpu.rate() - 1.0).abs() < 1e-12);
        assert_eq!(cpu.next_completion(), Some(ms(1)));
    }

    #[test]
    fn oversubscription_shares_processor() {
        let mut cpu = PsCpu::new(2, 0.0);
        for _ in 0..4 {
            cpu.add(Nanos::ZERO, 1e6);
        }
        // Four tasks on two cores: each runs at rate 1/2, so 1 ms of demand
        // takes 2 ms of wall clock.
        assert!((cpu.rate() - 0.5).abs() < 1e-12);
        assert_eq!(cpu.next_completion(), Some(ms(2)));
        let done = cpu.take_completed(ms(2));
        assert_eq!(done.len(), 4);
    }

    #[test]
    fn thread_pressure_penalty_slows_everything() {
        let mut plain = PsCpu::new(2, 0.0);
        let mut penalized = PsCpu::new(2, 0.25);
        plain.set_configured_threads(Nanos::ZERO, 6);
        penalized.set_configured_threads(Nanos::ZERO, 6);
        for _ in 0..6 {
            plain.add(Nanos::ZERO, 1e6);
            penalized.add(Nanos::ZERO, 1e6);
        }
        // p_eff = 2 / (1 + 0.25 * 4) = 1.0, rate = 1/6 vs plain 2/6.
        assert!(penalized.rate() < plain.rate());
        assert!((penalized.rate() - 1.0 / 6.0).abs() < 1e-12);
        assert!((penalized.effective_cores() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_at_or_below_cores_is_free() {
        let mut cpu = PsCpu::new(4, 0.5);
        cpu.set_configured_threads(Nanos::ZERO, 4);
        assert!((cpu.effective_cores() - 4.0).abs() < 1e-12);
        cpu.set_configured_threads(Nanos::ZERO, 2);
        assert!((cpu.effective_cores() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_midway_slows_existing_task() {
        let mut cpu = PsCpu::new(1, 0.0);
        cpu.add(Nanos::ZERO, 2e6); // 2 ms demand, alone on 1 core.
        cpu.advance(ms(1)); // 1 ms progressed, 1 ms left.
        cpu.add(ms(1), 1e6); // Now two tasks share the core at rate 1/2.
                             // First task: 1 ms left at rate 0.5 -> completes at t = 3 ms.
        assert_eq!(cpu.next_completion(), Some(ms(3)));
        let done = cpu.take_completed(ms(3));
        assert_eq!(done.len(), 2, "both finish together at 3 ms");
    }

    #[test]
    fn zero_demand_completes_immediately() {
        let mut cpu = PsCpu::new(1, 0.0);
        let id = cpu.add(ms(5), 0.0);
        let done = cpu.take_completed(ms(5));
        assert_eq!(done, vec![id]);
    }

    #[test]
    fn busy_integral_tracks_occupied_cores() {
        let mut cpu = PsCpu::new(4, 0.0);
        cpu.add(Nanos::ZERO, 2e6);
        cpu.add(Nanos::ZERO, 2e6);
        cpu.advance(ms(2));
        // Two tasks occupied two cores for 2 ms.
        let expect = 2.0 * 2e6;
        assert!((cpu.busy_core_ns() - expect).abs() < 1.0);
        // Utilization over the window: 2 of 4 cores -> 0.5.
        let util = cpu.utilization_since(0.0, Nanos::ZERO, ms(2));
        assert!((util - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_cpu_reports_no_completion() {
        let cpu = PsCpu::new(2, 0.1);
        assert_eq!(cpu.next_completion(), None);
        assert_eq!(cpu.rate(), 0.0);
        assert_eq!(cpu.slowdown(), 1.0);
    }

    #[test]
    fn completion_order_is_deterministic() {
        let mut a = PsCpu::new(1, 0.0);
        let mut b = PsCpu::new(1, 0.0);
        for cpu in [&mut a, &mut b] {
            for d in [3e5, 1e5, 2e5] {
                cpu.add(Nanos::ZERO, d);
            }
        }
        a.advance(ms(1));
        b.advance(ms(1));
        assert_eq!(a.take_completed(ms(1)), b.take_completed(ms(1)));
    }

    #[test]
    fn pause_stalls_progress_and_resume_restores_it() {
        let mut cpu = PsCpu::new(2, 0.0);
        cpu.add(Nanos::ZERO, 1e6); // 1 ms of demand.
        cpu.advance(ms(0) + Nanos::from_micros(400));
        cpu.pause(ms(0) + Nanos::from_micros(400));
        assert!(cpu.is_paused());
        assert_eq!(cpu.next_completion(), None, "no completion while paused");
        // A 5 ms pause: no progress.
        cpu.resume(Nanos::from_micros(5_400));
        // 0.6 ms of demand left; completes 0.6 ms after resume.
        assert_eq!(cpu.next_completion(), Some(Nanos::from_micros(6_000)),);
        let done = cpu.take_completed(Nanos::from_micros(6_000));
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn tasks_added_during_pause_wait_for_resume() {
        let mut cpu = PsCpu::new(1, 0.0);
        cpu.pause(Nanos::ZERO);
        cpu.add(ms(1), 1e6);
        assert_eq!(cpu.next_completion(), None);
        cpu.resume(ms(3));
        assert_eq!(cpu.next_completion(), Some(ms(4)));
    }

    #[test]
    fn rate_factor_slows_service() {
        let mut healthy = PsCpu::new(2, 0.0);
        let mut straggler = PsCpu::new(2, 0.0);
        straggler.set_rate_factor(Nanos::ZERO, 0.5);
        healthy.add(Nanos::ZERO, 1e6);
        straggler.add(Nanos::ZERO, 1e6);
        assert_eq!(healthy.next_completion(), Some(ms(1)));
        // Half speed: the same 1 ms of demand takes 2 ms of wall clock.
        assert_eq!(straggler.next_completion(), Some(ms(2)));
        assert!((straggler.slowdown() - 2.0).abs() < 1e-12);
        assert_eq!(straggler.take_completed(ms(2)).len(), 1);
    }

    #[test]
    fn rate_factor_change_splits_progress_exactly() {
        let mut cpu = PsCpu::new(1, 0.0);
        cpu.add(Nanos::ZERO, 2e6); // 2 ms of demand.
        cpu.advance(ms(1)); // 1 ms done at full rate.
        cpu.set_rate_factor(ms(1), 0.25); // Remaining 1 ms at quarter speed.
        assert_eq!(cpu.next_completion(), Some(ms(5)));
        // Restoring health mid-flight resumes full speed.
        cpu.advance(ms(3)); // 0.5 ms of the remaining demand done.
        cpu.set_rate_factor(ms(3), 1.0);
        assert_eq!(cpu.rate_factor(), 1.0);
        assert_eq!(cpu.next_completion(), Some(Nanos::from_micros(3_500)));
        assert_eq!(cpu.take_completed(Nanos::from_micros(3_500)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid rate factor")]
    fn zero_rate_factor_panics() {
        let mut cpu = PsCpu::new(1, 0.0);
        cpu.set_rate_factor(Nanos::ZERO, 0.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn advance_backwards_panics() {
        let mut cpu = PsCpu::new(1, 0.0);
        cpu.advance(ms(2));
        cpu.advance(ms(1));
    }

    #[test]
    fn work_conservation_under_churn() {
        // Total CPU demand in must equal busy core time out when the core
        // count is 1 and there is always work.
        let mut cpu = PsCpu::new(1, 0.0);
        let mut t = Nanos::ZERO;
        let mut total_demand = 0.0;
        for step in 1..=20u64 {
            let demand = (step as f64) * 1e4;
            total_demand += demand;
            cpu.add(t, demand);
            t += Nanos(7_500 * step);
            cpu.advance(t);
        }
        // Drain.
        while let Some(at) = cpu.next_completion() {
            cpu.advance(at);
            t = at;
        }
        cpu.take_completed(t);
        assert!(
            (cpu.busy_core_ns() - total_demand).abs() < 10.0,
            "busy {} vs demand {}",
            cpu.busy_core_ns(),
            total_demand
        );
    }
}
