//! Inter-server network delay model.
//!
//! The paper's Fig. 4 shows network latency is a small slice of end-to-end
//! latency (≈1%) inside a datacenter; the dominant remote-call cost is the
//! CPU spent on serialization plus the extra queue traversals. The network
//! model therefore only needs to be plausible: a base one-way propagation
//! delay, a per-byte transmission component, and bounded multiplicative
//! jitter.

use crate::rng::DetRng;
use crate::time::Nanos;

/// Delay model for one message hop between two servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Base one-way delay in nanoseconds (propagation + kernel stack).
    pub base_ns: f64,
    /// Transmission time per payload byte, in nanoseconds.
    pub per_byte_ns: f64,
    /// Multiplicative jitter: the delay is scaled by a uniform factor in
    /// `[1, 1 + jitter_frac]`.
    pub jitter_frac: f64,
}

impl NetworkModel {
    /// A typical intra-datacenter link: 250 µs one-way, 10 Gbps-ish
    /// per-byte cost, 20% jitter.
    pub fn datacenter() -> Self {
        NetworkModel {
            base_ns: 250_000.0,
            per_byte_ns: 0.8,
            jitter_frac: 0.2,
        }
    }

    /// An idealized zero-latency network (useful in unit tests).
    pub fn instant() -> Self {
        NetworkModel {
            base_ns: 0.0,
            per_byte_ns: 0.0,
            jitter_frac: 0.0,
        }
    }

    /// Samples the one-way delay for a message of `bytes` payload bytes.
    pub fn delay(&self, rng: &mut DetRng, bytes: u64) -> Nanos {
        let raw = self.base_ns + self.per_byte_ns * bytes as f64;
        let jitter = if self.jitter_frac > 0.0 {
            1.0 + rng.uniform(0.0, self.jitter_frac)
        } else {
            1.0
        };
        Nanos::from_nanos_f64(raw * jitter)
    }

    /// The mean one-way delay for a message of `bytes` payload bytes.
    pub fn mean_delay(&self, bytes: u64) -> Nanos {
        let raw = self.base_ns + self.per_byte_ns * bytes as f64;
        Nanos::from_nanos_f64(raw * (1.0 + self.jitter_frac / 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_network_has_zero_delay() {
        let net = NetworkModel::instant();
        let mut rng = DetRng::new(1);
        assert_eq!(net.delay(&mut rng, 10_000), Nanos::ZERO);
    }

    #[test]
    fn delay_grows_with_bytes() {
        let net = NetworkModel {
            base_ns: 1000.0,
            per_byte_ns: 2.0,
            jitter_frac: 0.0,
        };
        let mut rng = DetRng::new(1);
        assert_eq!(net.delay(&mut rng, 0), Nanos(1000));
        assert_eq!(net.delay(&mut rng, 500), Nanos(2000));
    }

    #[test]
    fn jitter_bounds() {
        let net = NetworkModel {
            base_ns: 1_000_000.0,
            per_byte_ns: 0.0,
            jitter_frac: 0.5,
        };
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let d = net.delay(&mut rng, 0).as_nanos();
            assert!((1_000_000..=1_500_001).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn mean_delay_matches_sampled_mean() {
        let net = NetworkModel::datacenter();
        let mut rng = DetRng::new(3);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| net.delay(&mut rng, 1000).as_nanos()).sum();
        let sampled = sum as f64 / n as f64;
        let analytic = net.mean_delay(1000).as_nanos() as f64;
        assert!(
            (sampled - analytic).abs() / analytic < 0.01,
            "sampled {sampled} analytic {analytic}"
        );
    }
}
