//! Coarse per-subsystem cost attribution: where does the simulator's
//! wall-clock time actually go?
//!
//! Future perf PRs need a target. [`EngineReport`] says how fast the
//! engine is overall, but not whether the time went to heap maintenance,
//! routing-table work, the Space-Saving sketch, the failure detector, or
//! the tracer. [`CostAttr`] answers that with deliberately cheap
//! accounting:
//!
//! * every instrumented operation increments an exact per-subsystem op
//!   counter (deterministic — same run, same counts);
//! * one in [`SAMPLE_EVERY`] operations is wall-clock timed, and the
//!   sampled duration is scaled by the sampling factor, so the per-bucket
//!   wall totals are statistically representative without paying two
//!   `Instant::now()` calls per operation.
//!
//! Wall-clock numbers are machine-dependent and **must never** flow into
//! deterministic artifacts (scrape JSONL, HTML reports, golden tests) —
//! they are surfaced only through the opt-in engine cost line. Op counts
//! are deterministic and safe anywhere.
//!
//! Accounting is off by default; when disabled, [`CostAttr::begin`] is a
//! single branch and no counters move, so the uninstrumented hot path is
//! unchanged.
//!
//! [`EngineReport`]: crate::EngineReport

use std::time::Instant;

/// Wall-time sampling factor: one timed operation per this many counted
/// ones. A power of two so the sample test is a mask.
pub const SAMPLE_EVERY: u64 = 64;

/// The subsystems the simulator attributes cost to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Event-queue maintenance: schedule, pop, cancel, reschedule.
    Heap,
    /// Actor routing: directory resolution, placement, forwarding.
    Routing,
    /// The Space-Saving communication sketch.
    Sketch,
    /// The phi-accrual failure detector.
    Detector,
    /// Span recording and the flight recorder.
    Tracer,
    /// Telemetry scrapes and SLO evaluation.
    Scrape,
}

impl Subsystem {
    /// Number of subsystems.
    pub const COUNT: usize = 6;

    /// Every subsystem, index order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Heap,
        Subsystem::Routing,
        Subsystem::Sketch,
        Subsystem::Detector,
        Subsystem::Tracer,
        Subsystem::Scrape,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Heap => "heap",
            Subsystem::Routing => "routing",
            Subsystem::Sketch => "sketch",
            Subsystem::Detector => "detector",
            Subsystem::Tracer => "tracer",
            Subsystem::Scrape => "scrape",
        }
    }
}

/// Per-subsystem op counts and sampled wall time. `Copy` so it rides
/// inside [`EngineReport`](crate::EngineReport) unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostAttr {
    /// Whether accounting is active.
    pub enabled: bool,
    /// Exact operation counts per subsystem (deterministic).
    pub ops: [u64; Subsystem::COUNT],
    /// Sampled wall nanoseconds per subsystem, scaled by
    /// [`SAMPLE_EVERY`] (machine-dependent).
    pub wall_ns: [u64; Subsystem::COUNT],
}

impl CostAttr {
    /// An enabled accumulator.
    pub fn enabled() -> Self {
        CostAttr {
            enabled: true,
            ..CostAttr::default()
        }
    }

    /// Counts one operation in `sub`; returns a start stamp when this
    /// operation is one of the sampled ones (the caller passes it back to
    /// [`end`](CostAttr::end)). When disabled this is a single branch.
    #[inline]
    pub fn begin(&mut self, sub: Subsystem) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        let ops = &mut self.ops[sub as usize];
        *ops += 1;
        (*ops & (SAMPLE_EVERY - 1) == 0).then(Instant::now)
    }

    /// Closes a sampled operation: adds the scaled elapsed time.
    #[inline]
    pub fn end(&mut self, sub: Subsystem, started: Option<Instant>) {
        if let Some(t) = started {
            self.wall_ns[sub as usize] +=
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX) * SAMPLE_EVERY;
        }
    }

    /// Folds another accumulator in: ops and wall times sum.
    pub fn merge(&mut self, other: &CostAttr) {
        self.enabled |= other.enabled;
        for i in 0..Subsystem::COUNT {
            self.ops[i] += other.ops[i];
            self.wall_ns[i] += other.wall_ns[i];
        }
    }

    /// Total instrumented operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// The human-readable cost table the bench binaries print under
    /// `ACTOP_COST=1`, or `None` when accounting never ran. Wall shares
    /// are relative to the instrumented total, not the whole run.
    pub fn table(&self) -> Option<String> {
        if !self.enabled || self.total_ops() == 0 {
            return None;
        }
        let total_wall: u64 = self.wall_ns.iter().sum();
        let mut out = String::from("cost: subsystem        ops   est wall (ms)   share\n");
        for sub in Subsystem::ALL {
            let i = sub as usize;
            if self.ops[i] == 0 {
                continue;
            }
            let share = if total_wall > 0 {
                self.wall_ns[i] as f64 / total_wall as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "cost: {:<10} {:>12} {:>12.2} {:>6.1}%\n",
                sub.name(),
                self.ops[i],
                self.wall_ns[i] as f64 / 1e6,
                share,
            ));
        }
        out.push_str(&format!(
            "cost: (sampled 1/{SAMPLE_EVERY}; wall estimates are machine-dependent and excluded from deterministic artifacts)\n"
        ));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_accounting_does_nothing() {
        let mut a = CostAttr::default();
        assert!(a.begin(Subsystem::Heap).is_none());
        a.end(Subsystem::Heap, None);
        assert_eq!(a.total_ops(), 0);
        assert_eq!(a.table(), None);
    }

    #[test]
    fn ops_count_exactly_and_sampling_is_periodic() {
        let mut a = CostAttr::enabled();
        let mut sampled = 0;
        for _ in 0..(SAMPLE_EVERY * 3) {
            if let Some(t) = a.begin(Subsystem::Routing) {
                sampled += 1;
                a.end(Subsystem::Routing, Some(t));
            }
        }
        assert_eq!(a.ops[Subsystem::Routing as usize], SAMPLE_EVERY * 3);
        assert_eq!(sampled, 3, "one sample per {SAMPLE_EVERY} ops");
        assert!(a.wall_ns[Subsystem::Routing as usize] > 0);
    }

    #[test]
    fn merge_sums_and_table_renders() {
        let mut a = CostAttr::enabled();
        for _ in 0..10 {
            let t = a.begin(Subsystem::Heap);
            a.end(Subsystem::Heap, t);
        }
        let mut b = CostAttr::enabled();
        for _ in 0..5 {
            let t = b.begin(Subsystem::Sketch);
            b.end(Subsystem::Sketch, t);
        }
        a.merge(&b);
        assert_eq!(a.ops[Subsystem::Heap as usize], 10);
        assert_eq!(a.ops[Subsystem::Sketch as usize], 5);
        let table = a.table().unwrap();
        assert!(table.contains("heap"));
        assert!(table.contains("sketch"));
        assert!(!table.contains("detector"), "zero buckets stay hidden");
    }

    #[test]
    fn merge_into_disabled_adopts_enablement() {
        let mut a = CostAttr::default();
        let mut b = CostAttr::enabled();
        let t = b.begin(Subsystem::Tracer);
        b.end(Subsystem::Tracer, t);
        a.merge(&b);
        assert!(a.enabled);
        assert_eq!(a.ops[Subsystem::Tracer as usize], 1);
    }
}
