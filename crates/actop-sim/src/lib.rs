//! Deterministic discrete-event simulation kernel for the ActOp reproduction.
//!
//! The paper evaluates ActOp on a ten-server Orleans cluster. This crate is
//! the substitute substrate: a deterministic discrete-event simulator with an
//! explicit cost model for CPU time (processor sharing across cores with a
//! context-switch penalty), SEDA stage queues with bounded thread pools, and
//! a network delay model. All of the queuing and CPU-contention effects the
//! paper measures arise from these components rather than from wall-clock
//! execution, which makes every experiment reproducible from a seed.
//!
//! Components:
//!
//! * [`time`] — nanosecond simulation time.
//! * [`rng`] — seeded, stream-split deterministic randomness.
//! * [`engine`] — the event queue and simulation loop.
//! * [`cpu`] — processor-sharing CPU with context-switch overhead.
//! * [`stage`] — SEDA stage: FIFO queue plus a bounded thread pool.
//! * [`net`] — inter-server network delay model.
//! * [`costs`] — the calibrated cost model shared by all experiments.
//! * [`shard`] — conservative-parallel windowed execution over shards.

pub mod attr;
pub mod costs;
pub mod cpu;
pub mod engine;
pub mod net;
pub mod rng;
pub mod shard;
pub mod stage;
pub mod time;

pub use attr::{CostAttr, Subsystem, SAMPLE_EVERY};
pub use costs::CostModel;
pub use cpu::{CpuTaskId, PsCpu};
pub use engine::{Engine, EngineReport, EventId, TickFn};
pub use net::NetworkModel;
pub use rng::{mix64, DetRng};
pub use shard::{
    ConservativeRunner, GlobalCtx, OutMsg, PhaseCell, ShardCell, ShardWorld, SpinBarrier,
};
pub use stage::{StagePool, StageStats};
pub use time::Nanos;
