//! Deterministic random-number streams for the simulator.
//!
//! Every stochastic component (workload arrivals, network jitter, placement
//! choices, ...) draws from its own [`DetRng`] stream derived from the run
//! seed and a stream label. Components therefore stay statistically
//! independent and a run is reproducible regardless of the order in which
//! components happen to draw.

/// A deterministic random stream (xoshiro256++, seeded via SplitMix64).
///
/// The generator is implemented in-repo — the build environment is offline,
/// so depending on the `rand` crate is not an option — and doubles as a
/// guarantee that streams are bit-stable across toolchain updates.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 finalizer; used to derive well-separated stream seeds and to
/// expand a 64-bit seed into the xoshiro256++ state. Public as the
/// workspace's one shared 64-bit mixer: the tracer's deterministic
/// head-sampling decision hashes `request id ^ seed` through it, so traces
/// are reproducible from the run seed exactly like every other stream.
pub fn mix64(z: u64) -> u64 {
    splitmix64(z)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates the root stream for a run seed.
    pub fn new(seed: u64) -> Self {
        let s = splitmix64(seed);
        // SplitMix64 sequence from the mixed seed; never all-zero.
        DetRng {
            state: [
                splitmix64(s.wrapping_add(1)),
                splitmix64(s.wrapping_add(2)),
                splitmix64(s.wrapping_add(3)),
                splitmix64(s.wrapping_add(4)),
            ],
        }
    }

    /// Derives an independent stream from a run seed and a stream label.
    pub fn stream(seed: u64, label: u64) -> Self {
        DetRng::new(splitmix64(seed) ^ splitmix64(label.wrapping_mul(0xa076_1d64_78bd_642f)))
    }

    /// Next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Lemire's widening-multiply reduction (bias < 2^-64 per draw).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer draw in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range inverted: [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + ((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponential draw with the given mean.
    ///
    /// Used for Poisson inter-arrival times and exponential service demands.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // Use 1 - u to avoid ln(0).
        -mean * (1.0 - self.unit()).ln()
    }

    /// Poisson draw with the given mean.
    ///
    /// Knuth's method for small means, a clamped normal approximation for
    /// large ones (sufficient for workload batch sizing).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean.is_finite() && mean >= 0.0, "poisson mean {mean}");
        if mean == 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let limit = (-mean).exp();
            let mut product = self.unit();
            let mut count = 0u64;
            while product > limit {
                product *= self.unit();
                count += 1;
            }
            count
        } else {
            let draw = mean + mean.sqrt() * self.normal();
            draw.max(0.0).round() as u64
        }
    }

    /// Standard-normal draw (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = DetRng::stream(42, 0);
        let mut b = DetRng::stream(42, 1);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams should be independent");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = DetRng::new(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_close_small_and_large() {
        let mut rng = DetRng::new(9);
        for target in [0.5, 4.0, 80.0] {
            let n = 10_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(target)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - target).abs() < 0.15 * target.max(1.0),
                "target {target} mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = DetRng::new(1);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_and_range_inclusive_bounds() {
        let mut rng = DetRng::new(6);
        for _ in 0..1000 {
            assert!(rng.below(3) < 3);
            let v = rng.range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
