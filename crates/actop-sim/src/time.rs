//! Simulation time as integer nanoseconds.
//!
//! A single type, [`Nanos`], represents both instants and durations. Integer
//! nanoseconds keep event ordering exact and runs bit-reproducible; `f64`
//! conversions are provided for the queuing-model math, which is tolerant of
//! rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time, or a span of it, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant (simulation start).
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as an "infinitely far" bound.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, saturating at zero for
    /// negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos((s.max(0.0) * 1e9).round() as u64)
    }

    /// Creates a time from fractional milliseconds, saturating at zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Nanos((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Creates a time from fractional nanoseconds, saturating at zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        Nanos(ns.max(0.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Nanos::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Nanos::from_micros(7).as_nanos(), 7_000);
        assert!((Nanos::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert!((Nanos::from_millis(250).as_millis_f64() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_saturates_negative() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_millis_f64(-0.5), Nanos::ZERO);
        assert_eq!(Nanos::from_nanos_f64(-3.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!(a + b, Nanos::from_micros(14));
        assert_eq!(a - b, Nanos::from_micros(6));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn sum_of_spans() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", Nanos::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Nanos::MAX.checked_add(Nanos(1)), None);
        assert_eq!(Nanos(1).checked_add(Nanos(2)), Some(Nanos(3)));
    }
}
