//! The calibrated cost model shared by all experiments.
//!
//! The paper's testbed is ten 8-core servers running Orleans. Our substitute
//! is a simulated cluster whose free parameters live here, in one place, so
//! that every experiment runs against the same calibration. The values are
//! chosen so the baseline Halo Presence run (6K requests/s on ten servers,
//! random placement) lands near the paper's operating point: ≈80% CPU
//! utilization and a median end-to-end latency of a few tens of
//! milliseconds.
//!
//! Where the costs come from:
//!
//! * **Serialization / deserialization** dominate remote calls (§3): in
//!   Orleans a remote call serializes arguments and deserializes them on the
//!   receiving server. We charge a fixed per-message cost plus a per-byte
//!   cost on each side.
//! * **Local calls** deep-copy arguments for isolation (§2), which is much
//!   cheaper than serialization.
//! * **Dispatch** is the fixed cost of moving a message between SEDA stages.
//! * **Context switching** penalizes oversubscribed thread allocations — the
//!   effect behind Fig. 5 and the `eta` thread regularizer.

use crate::net::NetworkModel;

/// Per-message, per-byte, and per-server cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Physical cores per server (the paper's testbed: 8).
    pub cores_per_server: usize,
    /// Context-switch coefficient `kappa` of the processor-sharing CPU.
    pub ctx_switch_coeff: f64,
    /// Inter-server network model.
    pub network: NetworkModel,
    /// Fixed CPU cost of deserializing one inbound remote message, ns.
    pub deserialize_fixed_ns: f64,
    /// Per-byte CPU cost of deserialization, ns.
    pub deserialize_per_byte_ns: f64,
    /// Fixed CPU cost of serializing one outbound remote message, ns.
    pub serialize_fixed_ns: f64,
    /// Per-byte CPU cost of serialization, ns.
    pub serialize_per_byte_ns: f64,
    /// Fixed CPU cost of the deep copy performed for a local call, ns.
    pub local_copy_fixed_ns: f64,
    /// Per-byte CPU cost of the local deep copy, ns.
    pub local_copy_per_byte_ns: f64,
    /// Fixed CPU cost of dispatching a message into a stage queue, ns.
    pub dispatch_fixed_ns: f64,
}

impl CostModel {
    /// The calibration used throughout the reproduction.
    pub fn calibrated() -> Self {
        CostModel {
            cores_per_server: 8,
            ctx_switch_coeff: 0.022,
            network: NetworkModel::datacenter(),
            deserialize_fixed_ns: 40_000.0,
            deserialize_per_byte_ns: 100.0,
            serialize_fixed_ns: 40_000.0,
            serialize_per_byte_ns: 100.0,
            local_copy_fixed_ns: 8_000.0,
            local_copy_per_byte_ns: 18.0,
            dispatch_fixed_ns: 4_000.0,
        }
    }

    /// CPU nanoseconds to deserialize an inbound remote message.
    pub fn deserialize_ns(&self, bytes: u64) -> f64 {
        self.deserialize_fixed_ns + self.deserialize_per_byte_ns * bytes as f64
    }

    /// CPU nanoseconds to serialize an outbound remote message.
    pub fn serialize_ns(&self, bytes: u64) -> f64 {
        self.serialize_fixed_ns + self.serialize_per_byte_ns * bytes as f64
    }

    /// CPU nanoseconds for the deep copy of a local call's arguments.
    pub fn local_copy_ns(&self, bytes: u64) -> f64 {
        self.local_copy_fixed_ns + self.local_copy_per_byte_ns * bytes as f64
    }

    /// The full CPU cost a remote hop adds across both servers, relative to
    /// a local call with the same payload. Useful for back-of-envelope
    /// capacity checks in tests.
    pub fn remote_overhead_ns(&self, bytes: u64) -> f64 {
        self.serialize_ns(bytes) + self.deserialize_ns(bytes) - self.local_copy_ns(bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_call_is_much_more_expensive_than_local() {
        let costs = CostModel::calibrated();
        let bytes = 1_000;
        let remote = costs.serialize_ns(bytes) + costs.deserialize_ns(bytes);
        let local = costs.local_copy_ns(bytes);
        assert!(
            remote > 5.0 * local,
            "remote {remote} should dwarf local {local}"
        );
    }

    #[test]
    fn costs_scale_with_bytes() {
        let costs = CostModel::calibrated();
        assert!(costs.serialize_ns(2000) > costs.serialize_ns(100));
        assert!(costs.deserialize_ns(2000) > costs.deserialize_ns(100));
        assert!(costs.local_copy_ns(2000) > costs.local_copy_ns(100));
    }

    #[test]
    fn remote_overhead_positive() {
        let costs = CostModel::calibrated();
        assert!(costs.remote_overhead_ns(500) > 0.0);
    }

    #[test]
    fn default_is_calibrated() {
        assert_eq!(CostModel::default(), CostModel::calibrated());
    }
}
