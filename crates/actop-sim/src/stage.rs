//! A SEDA stage: a FIFO event queue served by a bounded thread pool.
//!
//! Orleans servers (and our simulated ones) process requests as a pipeline
//! of stages — receive, application logic, server send, client send — each
//! with its own queue and a fixed number of threads (§2 of the paper). The
//! pool is passive: the owning server pushes work items, asks whether a
//! thread is free to start the next item, and reports completions. The pool
//! records the statistics the thread allocator needs: arrival rate, queue
//! waits, and a time-weighted queue-length integral.
//!
//! Thread counts are reconfigurable at run time ([`StagePool::set_threads`]);
//! shrinking below the number of busy threads lets the excess threads finish
//! their current item and then retire, exactly like retiring an OS thread
//! after its current work item.

use std::collections::VecDeque;

use crate::time::Nanos;

/// Statistics accumulated by a stage since the last [`StagePool::drain_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageStats {
    /// Items pushed into the queue.
    pub arrivals: u64,
    /// Items handed to a thread.
    pub started: u64,
    /// Items whose processing finished.
    pub completions: u64,
    /// Sum of time items spent queued before starting, in nanoseconds.
    pub total_wait_ns: u128,
    /// Time-weighted integral of the queue length, in item-nanoseconds.
    pub queue_len_integral: f64,
    /// Time-weighted integral of busy threads, in thread-nanoseconds. Divided
    /// by `window × threads` this is the measured stage utilization ρ, the
    /// quantity the analytic M/M/c oracle predicts.
    pub busy_integral: f64,
    /// Length of the observation window.
    pub window: Nanos,
}

impl StageStats {
    /// Mean arrival rate over the window, in items per second.
    pub fn arrival_rate_per_sec(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.arrivals as f64 / secs
        }
    }

    /// Mean queue wait per started item, in nanoseconds.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.started == 0 {
            0.0
        } else {
            self.total_wait_ns as f64 / self.started as f64
        }
    }

    /// Time-average queue length over the window.
    pub fn mean_queue_len(&self) -> f64 {
        let ns = self.window.as_nanos() as f64;
        if ns == 0.0 {
            0.0
        } else {
            self.queue_len_integral / ns
        }
    }

    /// Time-average number of busy threads over the window.
    pub fn mean_busy(&self) -> f64 {
        let ns = self.window.as_nanos() as f64;
        if ns == 0.0 {
            0.0
        } else {
            self.busy_integral / ns
        }
    }
}

/// A bounded thread pool with a FIFO queue of work items of type `T`.
#[derive(Debug, Clone)]
pub struct StagePool<T> {
    name: &'static str,
    threads: usize,
    busy: usize,
    queue: VecDeque<(Nanos, T)>,
    stats: StageStats,
    window_start: Nanos,
    last_update: Nanos,
}

impl<T> StagePool<T> {
    /// Creates a stage with the given initial thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(name: &'static str, threads: usize) -> Self {
        assert!(threads > 0, "stage {name} needs at least one thread");
        StagePool {
            name,
            threads,
            busy: 0,
            queue: VecDeque::new(),
            stats: StageStats::default(),
            window_start: Nanos::ZERO,
            last_update: Nanos::ZERO,
        }
    }

    /// The stage's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads currently processing an item.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Items waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when no item is queued or being processed.
    pub fn is_idle(&self) -> bool {
        self.busy == 0 && self.queue.is_empty()
    }

    fn integrate(&mut self, now: Nanos) {
        debug_assert!(now >= self.last_update, "stage time went backwards");
        let dt = (now - self.last_update).as_nanos() as f64;
        self.stats.queue_len_integral += self.queue.len() as f64 * dt;
        self.stats.busy_integral += self.busy as f64 * dt;
        self.last_update = now;
    }

    /// Enqueues an item at `now`.
    pub fn push(&mut self, now: Nanos, item: T) {
        self.integrate(now);
        self.stats.arrivals += 1;
        self.queue.push_back((now, item));
    }

    /// If a thread is free and an item is queued, starts the item and
    /// returns it along with the time it spent queued.
    pub fn try_start(&mut self, now: Nanos) -> Option<(T, Nanos)> {
        if self.busy >= self.threads {
            return None;
        }
        self.integrate(now);
        let (enqueued, item) = self.queue.pop_front()?;
        self.busy += 1;
        let wait = now.saturating_sub(enqueued);
        self.stats.started += 1;
        self.stats.total_wait_ns += wait.as_nanos() as u128;
        Some((item, wait))
    }

    /// Reports that a thread finished its item, freeing it for the next.
    ///
    /// # Panics
    ///
    /// Panics if no thread is busy.
    pub fn finish(&mut self, now: Nanos) {
        assert!(
            self.busy > 0,
            "stage {}: finish with no busy thread",
            self.name
        );
        self.integrate(now);
        self.busy -= 1;
        self.stats.completions += 1;
    }

    /// Reconfigures the thread count. Busy threads above the new count
    /// finish their current item and then retire (the pool simply will not
    /// start new items until `busy` drops below `threads`).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, now: Nanos, threads: usize) {
        assert!(threads > 0, "stage {} needs at least one thread", self.name);
        self.integrate(now);
        self.threads = threads;
    }

    /// Returns the statistics accumulated since the previous drain and
    /// starts a new observation window.
    pub fn drain_stats(&mut self, now: Nanos) -> StageStats {
        self.integrate(now);
        let mut stats = std::mem::take(&mut self.stats);
        stats.window = now.saturating_sub(self.window_start);
        self.window_start = now;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn fifo_order_and_wait_accounting() {
        let mut stage: StagePool<u32> = StagePool::new("worker", 1);
        stage.push(us(0), 1);
        stage.push(us(10), 2);
        let (item, wait) = stage.try_start(us(20)).expect("thread free");
        assert_eq!(item, 1);
        assert_eq!(wait, us(20));
        // Pool is single-threaded: second item cannot start yet.
        assert!(stage.try_start(us(20)).is_none());
        stage.finish(us(30));
        let (item, wait) = stage.try_start(us(30)).expect("thread freed");
        assert_eq!(item, 2);
        assert_eq!(wait, us(20));
    }

    #[test]
    fn concurrency_limited_by_threads() {
        let mut stage: StagePool<u32> = StagePool::new("recv", 3);
        for i in 0..5 {
            stage.push(us(0), i);
        }
        let mut started = 0;
        while stage.try_start(us(0)).is_some() {
            started += 1;
        }
        assert_eq!(started, 3);
        assert_eq!(stage.busy(), 3);
        assert_eq!(stage.queue_len(), 2);
    }

    #[test]
    fn shrink_below_busy_retires_gracefully() {
        let mut stage: StagePool<u32> = StagePool::new("send", 4);
        for i in 0..4 {
            stage.push(us(0), i);
        }
        while stage.try_start(us(0)).is_some() {}
        assert_eq!(stage.busy(), 4);
        stage.set_threads(us(1), 2);
        stage.push(us(1), 9);
        // No new item starts while busy exceeds the new limit.
        assert!(stage.try_start(us(1)).is_none());
        stage.finish(us(2));
        stage.finish(us(2));
        assert!(stage.try_start(us(2)).is_none(), "still at the limit");
        stage.finish(us(3));
        assert!(stage.try_start(us(3)).is_some(), "below limit again");
    }

    #[test]
    fn stats_window() {
        let mut stage: StagePool<u32> = StagePool::new("w", 1);
        stage.push(us(0), 1);
        stage.push(us(0), 2);
        let _ = stage.try_start(us(5));
        stage.finish(us(10));
        let _ = stage.try_start(us(10));
        stage.finish(us(20));
        let stats = stage.drain_stats(us(100));
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.started, 2);
        assert_eq!(stats.completions, 2);
        assert_eq!(stats.window, us(100));
        // Item 1 waited 5 us, item 2 waited 10 us.
        assert_eq!(stats.total_wait_ns, (us(15)).as_nanos() as u128);
        assert!((stats.mean_wait_ns() - us(15).as_nanos() as f64 / 2.0).abs() < 1e-9);
        // Queue length: 2 items during [0,5), 1 during [5,10), 0 after.
        let expect = (2.0 * 5_000.0 + 1.0 * 5_000.0) / 100_000.0;
        assert!((stats.mean_queue_len() - expect).abs() < 1e-9);
        // Busy thread: [5,10) and [10,20) -> 15 us of busy time.
        assert!((stats.mean_busy() - 15_000.0 / 100_000.0).abs() < 1e-9);
        // A fresh window starts empty.
        let stats2 = stage.drain_stats(us(200));
        assert_eq!(stats2.arrivals, 0);
        assert_eq!(stats2.window, us(100));
        assert_eq!(stats2.mean_queue_len(), 0.0);
    }

    #[test]
    fn arrival_rate_per_sec() {
        let mut stage: StagePool<()> = StagePool::new("w", 1);
        for _ in 0..500 {
            stage.push(us(0), ());
        }
        let stats = stage.drain_stats(Nanos::from_millis(500));
        assert!((stats.arrival_rate_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = StageStats::default();
        assert_eq!(stats.arrival_rate_per_sec(), 0.0);
        assert_eq!(stats.mean_wait_ns(), 0.0);
        assert_eq!(stats.mean_queue_len(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finish with no busy thread")]
    fn finish_without_start_panics() {
        let mut stage: StagePool<()> = StagePool::new("w", 1);
        stage.finish(us(0));
    }

    #[test]
    fn is_idle() {
        let mut stage: StagePool<u32> = StagePool::new("w", 1);
        assert!(stage.is_idle());
        stage.push(us(0), 1);
        assert!(!stage.is_idle());
        let _ = stage.try_start(us(0));
        assert!(!stage.is_idle());
        stage.finish(us(1));
        assert!(stage.is_idle());
    }
}
