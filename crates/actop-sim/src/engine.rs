//! The discrete-event engine: a time-ordered queue of scheduled closures.
//!
//! Events are closures over a user-supplied world type `W`. Ties in firing
//! time are broken by schedule order (a monotone sequence number), so runs
//! are fully deterministic. Events can be cancelled by id, which is how the
//! processor-sharing CPU retracts a provisional completion when the set of
//! runnable tasks changes.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Nanos;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: Nanos,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulation engine over a world type `W`.
///
/// # Examples
///
/// ```
/// use actop_sim::{Engine, Nanos};
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// engine.schedule(Nanos::from_millis(2), |w, _| w.push(2));
/// engine.schedule(Nanos::from_millis(1), |w, eng| {
///     w.push(1);
///     eng.schedule_after(Nanos::from_millis(5), |w, _| w.push(6));
/// });
/// let mut world = Vec::new();
/// engine.run(&mut world);
/// assert_eq!(world, vec![1, 2, 6]);
/// assert_eq!(engine.now(), Nanos::from_millis(6));
/// ```
pub struct Engine<W> {
    now: Nanos,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    processed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: Nanos::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including cancelled ones not yet
    /// drained from the queue).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the event runs at the
    /// current time, after all events already scheduled for it.
    pub fn schedule(
        &mut self,
        at: Nanos,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_after(
        &mut self,
        delay: Nanos,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule(at, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    fn pop_live(&mut self, horizon: Nanos) -> Option<Scheduled<W>> {
        while let Some(head) = self.queue.peek() {
            if head.at > horizon {
                return None;
            }
            let ev = self.queue.pop().expect("peeked");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, Nanos::MAX);
    }

    /// Runs all events with firing time `<= end`, then advances the clock to
    /// `end` (if the queue drained earlier, the clock still ends at `end`).
    pub fn run_until(&mut self, world: &mut W, end: Nanos) {
        while let Some(ev) = self.pop_live(end) {
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.processed += 1;
            (ev.f)(world, self);
        }
        if end != Nanos::MAX {
            self.now = self.now.max(end);
        }
    }

    /// Runs events until `stop` returns true (checked after each event) or
    /// the queue empties. Returns the number of events executed.
    pub fn run_while(&mut self, world: &mut W, mut keep_going: impl FnMut(&W) -> bool) -> u64 {
        let start = self.processed;
        while keep_going(world) {
            match self.pop_live(Nanos::MAX) {
                Some(ev) => {
                    self.now = ev.at;
                    self.processed += 1;
                    (ev.f)(world, self);
                }
                None => break,
            }
        }
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(Nanos(30), |w, _| w.push(3));
        engine.schedule(Nanos(10), |w, _| w.push(1));
        engine.schedule(Nanos(20), |w, _| w.push(2));
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..10 {
            engine.schedule(Nanos(5), move |w, _| w.push(i));
        }
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let keep = engine.schedule(Nanos(1), |w, _| w.push(1));
        let drop1 = engine.schedule(Nanos(2), |w, _| w.push(2));
        engine.schedule(Nanos(3), |w, _| w.push(3));
        engine.cancel(drop1);
        let _ = keep;
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule(Nanos(1), |w, _| *w += 1);
        let mut world = 0;
        engine.run(&mut world);
        engine.cancel(id);
        engine.schedule(Nanos(2), |w, _| *w += 10);
        engine.run(&mut world);
        assert_eq!(world, 11);
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(Nanos(10), |w, _| w.push(1));
        engine.schedule(Nanos(100), |w, _| w.push(2));
        let mut out = Vec::new();
        engine.run_until(&mut out, Nanos(50));
        assert_eq!(out, vec![1]);
        assert_eq!(engine.now(), Nanos(50));
        engine.run_until(&mut out, Nanos(200));
        assert_eq!(out, vec![1, 2]);
        assert_eq!(engine.now(), Nanos(200));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut engine: Engine<Vec<Nanos>> = Engine::new();
        engine.schedule(Nanos(100), |_, eng| {
            eng.schedule(Nanos(5), |w, eng2| w.push(eng2.now()));
        });
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![Nanos(100)]);
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut engine: Engine<u64> = Engine::new();
        fn tick(w: &mut u64, eng: &mut Engine<u64>) {
            *w += 1;
            if *w < 5 {
                eng.schedule_after(Nanos(10), tick);
            }
        }
        engine.schedule(Nanos(0), tick);
        let mut world = 0;
        engine.run(&mut world);
        assert_eq!(world, 5);
        assert_eq!(engine.now(), Nanos(40));
        assert_eq!(engine.events_processed(), 5);
    }

    #[test]
    fn run_while_predicate_stops() {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..100u64 {
            engine.schedule(Nanos(i), |w, _| *w += 1);
        }
        let mut world = 0;
        let n = engine.run_while(&mut world, |w| *w < 10);
        assert_eq!(n, 10);
        assert_eq!(world, 10);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut engine: Engine<()> = Engine::new();
        let a = engine.schedule(Nanos(1), |_, _| {});
        engine.schedule(Nanos(2), |_, _| {});
        engine.cancel(a);
        assert_eq!(engine.pending(), 1);
    }
}
