//! The discrete-event engine: an indexed time-ordered queue of scheduled
//! events.
//!
//! Events are closures over a user-supplied world type `W`, or — on the
//! allocation-free fast path — a plain function pointer plus a `u64`
//! payload ([`Engine::schedule_tick`]). Ties in firing time are broken by
//! schedule order (a monotone sequence number), so runs are fully
//! deterministic.
//!
//! The queue is a slab-backed 4-ary min-heap indexed by slot: every pending
//! event owns a slab slot, and the slot tracks its heap position. That
//! makes [`Engine::cancel`] a true O(log n) in-place removal (no tombstone
//! accumulation — under the processor-sharing CPU model, which retracts a
//! provisional completion on every runnable-set change, tombstones used to
//! dominate the queue) and enables [`Engine::reschedule`], which retargets
//! a pending event by sifting it to its new position without dropping or
//! reallocating its payload. Slab slots carry a generation counter, so a
//! stale [`EventId`] (its event already fired or was cancelled) is detected
//! exactly and cancelling it is a no-op rather than a miscount.

use crate::attr::{CostAttr, Subsystem};
use crate::time::Nanos;

/// Identifier of a scheduled event, usable for cancellation and
/// rescheduling. Ids are generation-tagged: once the event fires or is
/// cancelled, the id goes stale and later operations on it are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// The allocation-free event form: a function pointer taking the world,
/// the engine, and the `u64` payload it was scheduled with.
pub type TickFn<W> = fn(&mut W, &mut Engine<W>, u64);

enum Payload<W> {
    /// A boxed one-shot closure ([`Engine::schedule`]).
    Once(EventFn<W>),
    /// A function pointer plus payload ([`Engine::schedule_tick`]); never
    /// allocates and survives [`Engine::reschedule`] untouched.
    Tick(TickFn<W>, u64),
    /// Free slot.
    Vacant,
}

/// Sentinel for "not in the heap".
const NO_POS: u32 = u32::MAX;

struct Slot<W> {
    gen: u32,
    /// Position in `heap`, or [`NO_POS`] when the slot is free.
    pos: u32,
    payload: Payload<W>,
}

/// A heap entry: the ordering key is carried inline so comparisons never
/// chase the slab.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Nanos,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

/// Heap arity. Quaternary: shallower than binary for the same length, and
/// the four children share a cache line, which wins on the sift-down-heavy
/// pop path.
const D: usize = 4;

/// Counters describing one engine's lifetime, for cross-PR performance
/// tracking. Obtain via [`Engine::report`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineReport {
    /// Events executed.
    pub events_processed: u64,
    /// In-place cancellations.
    pub cancels: u64,
    /// In-place retargets ([`Engine::reschedule`]).
    pub reschedules: u64,
    /// Highest number of simultaneously pending events.
    pub peak_pending: usize,
    /// Wall-clock nanoseconds the run loops spanned. Under [`merge`] this
    /// takes the **max** of the two sides: engines that ran concurrently
    /// (shard workers, parallel sweeps) overlap in time, and summing their
    /// spans would under-report parallel throughput.
    ///
    /// [`merge`]: EngineReport::merge
    pub wall_ns: u128,
    /// CPU nanoseconds spent inside the run loops, summed across engines
    /// under [`merge`] — the total simulation work, as opposed to the
    /// elapsed time it took.
    ///
    /// [`merge`]: EngineReport::merge
    pub cpu_ns: u128,
    /// Opt-in per-subsystem cost attribution ([`Engine::set_cost_attr`]).
    /// The engine fills the heap bucket; runtimes layered on top fold
    /// their own buckets (routing, sketch, detector, tracer, scrape) in
    /// via [`CostAttr::merge`]. All-zero when accounting is off.
    pub attr: CostAttr,
}

impl EngineReport {
    /// Events executed per wall-clock second inside the run loops. For a
    /// merged report this is aggregate throughput: total events over the
    /// longest concurrent span.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events_processed as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Merges another report into this one: counters and CPU time sum,
    /// peak queue depth and wall-clock span take the max (concurrent
    /// engines overlap in time; sequential callers that want a total span
    /// can sum `wall_ns` themselves).
    pub fn merge(&mut self, other: &EngineReport) {
        self.events_processed += other.events_processed;
        self.cancels += other.cancels;
        self.reschedules += other.reschedules;
        self.peak_pending = self.peak_pending.max(other.peak_pending);
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        self.cpu_ns += other.cpu_ns;
        self.attr.merge(&other.attr);
    }

    /// The one-line summary the bench binaries print: throughput against
    /// the wall-clock span, with the summed CPU time alongside so parallel
    /// runs show both elapsed time and total work.
    pub fn line(&self) -> String {
        format!(
            "engine: {:.2}M events in {:.2}s wall ({:.2}s cpu) = {:.2}M events/s, peak queue {}, cancels {}, reschedules {}",
            self.events_processed as f64 / 1e6,
            self.wall_ns as f64 / 1e9,
            self.cpu_ns as f64 / 1e9,
            self.events_per_sec() / 1e6,
            self.peak_pending,
            self.cancels,
            self.reschedules,
        )
    }
}

/// A discrete-event simulation engine over a world type `W`.
///
/// # Examples
///
/// ```
/// use actop_sim::{Engine, Nanos};
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// engine.schedule(Nanos::from_millis(2), |w, _| w.push(2));
/// engine.schedule(Nanos::from_millis(1), |w, eng| {
///     w.push(1);
///     eng.schedule_after(Nanos::from_millis(5), |w, _| w.push(6));
/// });
/// let mut world = Vec::new();
/// engine.run(&mut world);
/// assert_eq!(world, vec![1, 2, 6]);
/// assert_eq!(engine.now(), Nanos::from_millis(6));
/// ```
pub struct Engine<W> {
    now: Nanos,
    seq: u64,
    heap: Vec<Entry>,
    slots: Vec<Slot<W>>,
    free: Vec<u32>,
    processed: u64,
    cancels: u64,
    reschedules: u64,
    peak_pending: usize,
    wall_ns: u128,
    attr: CostAttr,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: Nanos::ZERO,
            seq: 0,
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            processed: 0,
            cancels: 0,
            reschedules: 0,
            peak_pending: 0,
            wall_ns: 0,
            attr: CostAttr::default(),
        }
    }

    /// Enables or disables per-subsystem cost attribution. When on, the
    /// engine counts heap operations (schedule/pop/cancel/reschedule) and
    /// samples their wall time into [`EngineReport::attr`]. Off by
    /// default: the uninstrumented hot path pays one branch per op.
    pub fn set_cost_attr(&mut self, enabled: bool) {
        self.attr.enabled = enabled;
    }

    /// The engine's cost accumulator, for layered runtimes that want to
    /// time their own subsystems into the same report.
    pub fn cost_attr_mut(&mut self) -> &mut CostAttr {
        &mut self.attr
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending. Exact: cancelled events leave
    /// the queue immediately.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Firing time of the earliest pending event, if any. The windowed
    /// shard runner uses this to find the next activity across shards
    /// without popping.
    pub fn next_event_at(&self) -> Option<Nanos> {
        self.heap.first().map(|e| e.at)
    }

    /// Lifetime counters (events, cancels, reschedules, peak queue depth,
    /// wall-clock time inside the run loops).
    pub fn report(&self) -> EngineReport {
        EngineReport {
            events_processed: self.processed,
            cancels: self.cancels,
            reschedules: self.reschedules,
            peak_pending: self.peak_pending,
            wall_ns: self.wall_ns,
            // A single engine runs on one thread: its CPU time inside the
            // run loops equals the time they spanned.
            cpu_ns: self.wall_ns,
            attr: self.attr,
        }
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the event runs at the
    /// current time, after all events already scheduled for it.
    pub fn schedule(
        &mut self,
        at: Nanos,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.insert(at, Payload::Once(Box::new(f)))
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule_after(
        &mut self,
        delay: Nanos,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule(at, f)
    }

    /// Schedules the allocation-free event form: at `at`, `f` runs with
    /// `payload`. Combined with [`Engine::reschedule`] this is the
    /// steady-state hot path — no allocation per event, and retargeting
    /// reuses both the slab slot and the payload.
    pub fn schedule_tick(&mut self, at: Nanos, f: TickFn<W>, payload: u64) -> EventId {
        self.insert(at, Payload::Tick(f, payload))
    }

    /// [`Engine::schedule_tick`] relative to the current time.
    pub fn schedule_tick_after(&mut self, delay: Nanos, f: TickFn<W>, payload: u64) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule_tick(at, f, payload)
    }

    fn insert(&mut self, at: Nanos, payload: Payload<W>) -> EventId {
        let timed = self.attr.begin(Subsystem::Heap);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(matches!(s.payload, Payload::Vacant));
                s.payload = payload;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    pos: NO_POS,
                    payload,
                });
                slot
            }
        };
        let pos = self.heap.len();
        self.heap.push(Entry { at, seq, slot });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        self.peak_pending = self.peak_pending.max(self.heap.len());
        self.attr.end(Subsystem::Heap, timed);
        EventId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    // ------------------------------------------------------------------
    // Cancellation and rescheduling.
    // ------------------------------------------------------------------

    /// Resolves an id to its slot if the event is still pending.
    fn live(&self, id: EventId) -> Option<u32> {
        let slot = self.slots.get(id.slot as usize)?;
        (slot.gen == id.gen && slot.pos != NO_POS).then_some(id.slot)
    }

    /// True while the event behind `id` is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live(id).is_some()
    }

    /// Cancels a previously scheduled event, removing it from the queue in
    /// place. Cancelling an event that has already fired (or was already
    /// cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        let Some(slot) = self.live(id) else {
            return;
        };
        let timed = self.attr.begin(Subsystem::Heap);
        let pos = self.slots[slot as usize].pos as usize;
        self.remove_at(pos);
        self.release(slot);
        self.cancels += 1;
        self.attr.end(Subsystem::Heap, timed);
    }

    /// Retargets a pending event to fire at `at` (clamped to now), keeping
    /// its payload. Equivalent to cancelling and rescheduling the same
    /// event — including taking a fresh tie-break sequence number — but
    /// without releasing the slot or touching the payload. Returns `false`
    /// (and does nothing) when the event already fired or was cancelled.
    pub fn reschedule(&mut self, id: EventId, at: Nanos) -> bool {
        let Some(slot) = self.live(id) else {
            return false;
        };
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let pos = self.slots[slot as usize].pos as usize;
        self.heap[pos].at = at;
        self.heap[pos].seq = seq;
        // The key changed arbitrarily: restore heap order from `pos`.
        let timed = self.attr.begin(Subsystem::Heap);
        self.sift_down(pos);
        self.sift_up(self.slots[slot as usize].pos as usize);
        self.reschedules += 1;
        self.attr.end(Subsystem::Heap, timed);
        true
    }

    /// Marks a slot free and bumps its generation so stale ids miss.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.payload = Payload::Vacant;
        s.pos = NO_POS;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
    }

    // ------------------------------------------------------------------
    // Heap maintenance.
    // ------------------------------------------------------------------

    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / D;
            if entry.key() < self.heap[parent].key() {
                self.heap[pos] = self.heap[parent];
                self.slots[self.heap[pos].slot as usize].pos = pos as u32;
                pos = parent;
            } else {
                break;
            }
        }
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].pos = pos as u32;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        let entry = self.heap[pos];
        loop {
            let first = pos * D + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let end = (first + D).min(len);
            for child in first + 1..end {
                if self.heap[child].key() < self.heap[best].key() {
                    best = child;
                }
            }
            if self.heap[best].key() < entry.key() {
                self.heap[pos] = self.heap[best];
                self.slots[self.heap[pos].slot as usize].pos = pos as u32;
                pos = best;
            } else {
                break;
            }
        }
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].pos = pos as u32;
    }

    /// Removes the entry at heap position `pos` (the caller releases the
    /// slot).
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos == last {
            self.heap.pop();
            return;
        }
        self.heap.swap(pos, last);
        self.heap.pop();
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
        // The moved entry may belong above or below `pos`.
        self.sift_down(pos);
        let slot = self.heap.get(pos).map(|e| e.slot);
        if let Some(slot) = slot {
            let now_at = self.slots[slot as usize].pos as usize;
            if now_at == pos {
                self.sift_up(pos);
            }
        }
    }

    // ------------------------------------------------------------------
    // The run loops.
    // ------------------------------------------------------------------

    /// Pops the earliest event at or before `horizon`, releasing its slot.
    fn pop_due(&mut self, horizon: Nanos) -> Option<(Nanos, Payload<W>)> {
        let head = self.heap.first()?;
        if head.at > horizon {
            return None;
        }
        let at = head.at;
        let slot = head.slot;
        let timed = self.attr.begin(Subsystem::Heap);
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.slots[self.heap[0].slot as usize].pos = 0;
            self.sift_down(0);
        }
        let payload = std::mem::replace(&mut self.slots[slot as usize].payload, Payload::Vacant);
        self.release(slot);
        self.attr.end(Subsystem::Heap, timed);
        Some((at, payload))
    }

    fn fire(&mut self, world: &mut W, at: Nanos, payload: Payload<W>) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.processed += 1;
        match payload {
            Payload::Once(f) => f(world, self),
            Payload::Tick(f, arg) => f(world, self, arg),
            Payload::Vacant => unreachable!("fired a vacant slot"),
        }
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, Nanos::MAX);
    }

    /// Runs all events with firing time `<= end`, then advances the clock to
    /// `end` (if the queue drained earlier, the clock still ends at `end`).
    pub fn run_until(&mut self, world: &mut W, end: Nanos) {
        let started = std::time::Instant::now();
        while let Some((at, payload)) = self.pop_due(end) {
            self.fire(world, at, payload);
        }
        if end != Nanos::MAX {
            self.now = self.now.max(end);
        }
        self.wall_ns += started.elapsed().as_nanos();
    }

    /// Runs all events with firing time strictly `< end`, then advances
    /// the clock to `end`. The strict horizon is the windowed-execution
    /// primitive: a conservative-parallel window `[start, end)` owns
    /// exactly the events before `end`, and events *at* `end` belong to
    /// the next window (after the barrier that opens it).
    pub fn run_before(&mut self, world: &mut W, end: Nanos) {
        let started = std::time::Instant::now();
        while let Some(head) = self.heap.first() {
            if head.at >= end {
                break;
            }
            let (at, payload) = self.pop_due(end).expect("head checked above");
            self.fire(world, at, payload);
        }
        if end != Nanos::MAX {
            self.now = self.now.max(end);
        }
        self.wall_ns += started.elapsed().as_nanos();
    }

    /// Runs events until `keep_going` returns false (checked before each
    /// event) or the queue empties. Returns the number of events executed.
    pub fn run_while(&mut self, world: &mut W, mut keep_going: impl FnMut(&W) -> bool) -> u64 {
        let started = std::time::Instant::now();
        let start = self.processed;
        while keep_going(world) {
            match self.pop_due(Nanos::MAX) {
                Some((at, payload)) => self.fire(world, at, payload),
                None => break,
            }
        }
        self.wall_ns += started.elapsed().as_nanos();
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(Nanos(30), |w, _| w.push(3));
        engine.schedule(Nanos(10), |w, _| w.push(1));
        engine.schedule(Nanos(20), |w, _| w.push(2));
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..10 {
            engine.schedule(Nanos(5), move |w, _| w.push(i));
        }
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let keep = engine.schedule(Nanos(1), |w, _| w.push(1));
        let drop1 = engine.schedule(Nanos(2), |w, _| w.push(2));
        engine.schedule(Nanos(3), |w, _| w.push(3));
        engine.cancel(drop1);
        let _ = keep;
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule(Nanos(1), |w, _| *w += 1);
        let mut world = 0;
        engine.run(&mut world);
        engine.cancel(id);
        engine.schedule(Nanos(2), |w, _| *w += 10);
        engine.run(&mut world);
        assert_eq!(world, 11);
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(Nanos(10), |w, _| w.push(1));
        engine.schedule(Nanos(100), |w, _| w.push(2));
        let mut out = Vec::new();
        engine.run_until(&mut out, Nanos(50));
        assert_eq!(out, vec![1]);
        assert_eq!(engine.now(), Nanos(50));
        engine.run_until(&mut out, Nanos(200));
        assert_eq!(out, vec![1, 2]);
        assert_eq!(engine.now(), Nanos(200));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut engine: Engine<Vec<Nanos>> = Engine::new();
        engine.schedule(Nanos(100), |_, eng| {
            eng.schedule(Nanos(5), |w, eng2| w.push(eng2.now()));
        });
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![Nanos(100)]);
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut engine: Engine<u64> = Engine::new();
        fn tick(w: &mut u64, eng: &mut Engine<u64>) {
            *w += 1;
            if *w < 5 {
                eng.schedule_after(Nanos(10), tick);
            }
        }
        engine.schedule(Nanos(0), tick);
        let mut world = 0;
        engine.run(&mut world);
        assert_eq!(world, 5);
        assert_eq!(engine.now(), Nanos(40));
        assert_eq!(engine.events_processed(), 5);
    }

    #[test]
    fn run_while_predicate_stops() {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..100u64 {
            engine.schedule(Nanos(i), |w, _| *w += 1);
        }
        let mut world = 0;
        let n = engine.run_while(&mut world, |w| *w < 10);
        assert_eq!(n, 10);
        assert_eq!(world, 10);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut engine: Engine<()> = Engine::new();
        let a = engine.schedule(Nanos(1), |_, _| {});
        engine.schedule(Nanos(2), |_, _| {});
        engine.cancel(a);
        assert_eq!(engine.pending(), 1);
    }

    /// Regression: the tombstone queue miscounted `pending()` when an
    /// already-fired event was cancelled (the stale id stayed in the
    /// cancelled set and `queue.len() - cancelled.len()` underflowed in
    /// debug builds). Generation-tagged slots make the stale cancel a
    /// detectable no-op.
    #[test]
    fn pending_is_exact_after_stale_cancels() {
        let mut engine: Engine<u32> = Engine::new();
        let fired = engine.schedule(Nanos(1), |w, _| *w += 1);
        let mut world = 0;
        engine.run(&mut world);
        assert_eq!(engine.pending(), 0);
        // Stale cancel: must not fire, must not corrupt the count.
        engine.cancel(fired);
        engine.cancel(fired);
        assert_eq!(engine.pending(), 0);
        let live = engine.schedule(Nanos(2), |w, _| *w += 1);
        assert_eq!(engine.pending(), 1);
        // Double-cancel of a live event counts it once.
        engine.cancel(live);
        engine.cancel(live);
        assert_eq!(engine.pending(), 0);
        engine.run(&mut world);
        assert_eq!(world, 1);
    }

    /// Slot reuse must not let an id from a dead event cancel its
    /// successor occupying the same slab slot.
    #[test]
    fn stale_id_cannot_cancel_slot_reuser() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let first = engine.schedule(Nanos(1), |w, _| w.push(1));
        engine.cancel(first);
        // This reuses the freed slot.
        engine.schedule(Nanos(2), |w, _| w.push(2));
        engine.cancel(first); // Stale: different generation.
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn reschedule_moves_event_both_directions() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let id = engine.schedule(Nanos(50), |w, _| w.push(9));
        engine.schedule(Nanos(20), |w, _| w.push(2));
        engine.schedule(Nanos(40), |w, _| w.push(4));
        // Earlier.
        assert!(engine.reschedule(id, Nanos(10)));
        let mut out = Vec::new();
        engine.run_until(&mut out, Nanos(15));
        assert_eq!(out, vec![9]);
        // A fresh one, later.
        let id2 = engine.schedule(Nanos(25), |w, _| w.push(7));
        assert!(engine.reschedule(id2, Nanos(60)));
        engine.run(&mut out);
        assert_eq!(out, vec![9, 2, 4, 7]);
    }

    #[test]
    fn reschedule_takes_fresh_tie_break_seq() {
        // Exactly like cancel + schedule: a rescheduled event fires after
        // events already scheduled at the same instant.
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let id = engine.schedule(Nanos(5), |w, _| w.push(1));
        engine.schedule(Nanos(5), |w, _| w.push(2));
        assert!(engine.reschedule(id, Nanos(5)));
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![2, 1]);
    }

    #[test]
    fn reschedule_after_fire_returns_false() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule(Nanos(1), |w, _| *w += 1);
        let mut world = 0;
        engine.run(&mut world);
        assert!(!engine.reschedule(id, Nanos(9)));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn tick_events_fire_with_payload() {
        fn bump(w: &mut Vec<u64>, _e: &mut Engine<Vec<u64>>, payload: u64) {
            w.push(payload);
        }
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule_tick(Nanos(20), bump, 20);
        engine.schedule_tick(Nanos(10), bump, 10);
        let id = engine.schedule_tick_after(Nanos(30), bump, 99);
        assert!(engine.reschedule(id, Nanos(15)));
        let mut out = Vec::new();
        engine.run(&mut out);
        assert_eq!(out, vec![10, 99, 20]);
        assert!(engine.report().reschedules == 1);
    }

    #[test]
    fn is_pending_tracks_lifecycle() {
        let mut engine: Engine<()> = Engine::new();
        let id = engine.schedule(Nanos(5), |_, _| {});
        assert!(engine.is_pending(id));
        engine.cancel(id);
        assert!(!engine.is_pending(id));
    }

    #[test]
    fn report_counts_operations() {
        let mut engine: Engine<u64> = Engine::new();
        let a = engine.schedule(Nanos(1), |w, _| *w += 1);
        let b = engine.schedule(Nanos(2), |w, _| *w += 1);
        engine.schedule(Nanos(3), |w, _| *w += 1);
        engine.cancel(a);
        engine.reschedule(b, Nanos(5));
        let mut world = 0;
        engine.run(&mut world);
        let report = engine.report();
        assert_eq!(report.events_processed, 2);
        assert_eq!(report.cancels, 1);
        assert_eq!(report.reschedules, 1);
        assert_eq!(report.peak_pending, 3);
        assert!(report.line().starts_with("engine:"));
    }

    #[test]
    fn run_before_excludes_the_horizon() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(Nanos(10), |w, _| w.push(1));
        engine.schedule(Nanos(50), |w, _| w.push(2));
        engine.schedule(Nanos(50), |w, _| w.push(3));
        let mut out = Vec::new();
        engine.run_before(&mut out, Nanos(50));
        assert_eq!(
            out,
            vec![1],
            "events at the horizon belong to the next window"
        );
        assert_eq!(engine.now(), Nanos(50));
        engine.run_before(&mut out, Nanos(51));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn merge_sums_cpu_and_maxes_wall() {
        let a = EngineReport {
            events_processed: 10,
            wall_ns: 100,
            cpu_ns: 100,
            peak_pending: 4,
            ..EngineReport::default()
        };
        let b = EngineReport {
            events_processed: 30,
            wall_ns: 40,
            cpu_ns: 40,
            peak_pending: 9,
            ..EngineReport::default()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.events_processed, 40);
        assert_eq!(m.wall_ns, 100, "concurrent spans overlap: take the max");
        assert_eq!(m.cpu_ns, 140, "work adds up: take the sum");
        assert_eq!(m.peak_pending, 9);
        let line = m.line();
        assert!(line.contains("wall"), "{line}");
        assert!(line.contains("cpu"), "{line}");
    }

    /// Heavy interleaved churn keeps the indexed heap consistent: firing
    /// order stays (time, seq)-sorted under schedule/cancel/reschedule.
    #[test]
    fn churn_preserves_order() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            let at = Nanos((i * 37) % 500);
            ids.push(engine.schedule(at, move |w, _| w.push(at.as_nanos())));
        }
        for i in (0..200).step_by(3) {
            engine.cancel(ids[i]);
        }
        for i in (1..200).step_by(3) {
            engine.reschedule(ids[i], Nanos(((i as u64) * 91) % 600));
        }
        let mut out = Vec::new();
        engine.run(&mut out);
        // Cancelled events are gone; order is non-decreasing in time.
        assert_eq!(out.len(), 200 - ids.len().div_ceil(3));
        let fired_sorted = {
            let mut s = out.clone();
            s.sort_unstable();
            s
        };
        // Times recorded are the original `at`s for non-rescheduled events,
        // so only check monotonicity of firing times via engine clock: the
        // run completed without panicking and the count matches. Ordering
        // is asserted structurally by the differential property test.
        assert_eq!(fired_sorted.len(), out.len());
    }
}
