//! The steady-state measurement harness shared by examples and benches.
//!
//! The paper measures after the system reaches steady state (§6.1): the
//! warmup window is excluded, and client latencies, message-locality
//! counters, CPU utilization, and throughput are reported for the
//! measurement window only.

use actop_runtime::Cluster;
use actop_sim::{Engine, Nanos};

/// Steady-state measurements over one run window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Mean end-to-end latency, milliseconds.
    pub mean_ms: f64,
    /// Fraction of actor-to-actor messages that crossed servers.
    pub remote_fraction: f64,
    /// Mean CPU utilization across servers over the window.
    pub cpu_utilization: f64,
    /// Client requests completed in the window.
    pub completed: u64,
    /// Client requests submitted in the window.
    pub submitted: u64,
    /// Client requests shed by overload control in the window.
    pub rejected: u64,
    /// Client requests abandoned by the request timeout in the window.
    pub timed_out: u64,
    /// Messages re-routed after arriving at a server no longer hosting
    /// their target actor (migration races, gateway hops) in the window.
    pub forwarded_messages: u64,
    /// Responses that arrived for an already-abandoned request or join in
    /// the window.
    pub stale_responses: u64,
    /// Actor migrations during the whole run so far.
    pub migrations: u64,
    /// Completed requests per second over the window.
    pub throughput_per_s: f64,
    /// Transport backoff retries scheduled in the window.
    pub retries: u64,
    /// Total backoff delay those retries spent, milliseconds.
    pub retry_backoff_ms: f64,
    /// Directory entries repaired because their host was suspected, in the
    /// window.
    pub directory_repairs: u64,
    /// Directory repairs whose suspected host was in fact alive (false
    /// suspicion), in the window.
    pub false_suspicion_repairs: u64,
    /// Requests shed at admission because no live server remained, in the
    /// window (also counted in `rejected`).
    pub shed_no_live: u64,
    /// SLO burn-rate alerts opened over the whole run (telemetry must be
    /// enabled; zero otherwise).
    pub slo_alerts_opened: u64,
    /// SLO burn-rate alerts closed over the whole run.
    pub slo_alerts_closed: u64,
}

impl RunSummary {
    /// The paper's improvement metric `100 * (1 - optimized/baseline)` for
    /// a latency field selected by `f`.
    pub fn improvement_pct(
        baseline: &RunSummary,
        optimized: &RunSummary,
        f: impl Fn(&RunSummary) -> f64,
    ) -> f64 {
        actop_metrics::stats::improvement_pct(f(baseline), f(optimized))
    }
}

/// Runs the cluster for `warmup` (relative to the current clock), resets
/// the steady-state counters, runs for `measure` more, and summarizes the
/// measurement window.
///
/// The workload and any ActOp agents must already be installed on the
/// engine.
pub fn run_steady_state(
    engine: &mut Engine<Cluster>,
    cluster: &mut Cluster,
    warmup: Nanos,
    measure: Nanos,
) -> RunSummary {
    let warmup_end = engine.now() + warmup;
    engine.run_until(cluster, warmup_end);
    cluster.reset_steady_state();
    let snapshots: Vec<f64> = (0..cluster.server_count())
        .map(|s| cluster.busy_core_ns(s))
        .collect();
    let start = engine.now();
    engine.run_until(cluster, start + measure);
    let now = engine.now();
    // Feed any series bins that closed after the last scrape to the SLO
    // engine so the alert tallies below are complete (no-op without
    // telemetry).
    cluster.finalize_obs(now);

    let hist = &cluster.metrics.e2e_latency;
    let summary = hist.summary();
    RunSummary {
        p50_ms: summary.p50 as f64 / 1e6,
        p95_ms: summary.p95 as f64 / 1e6,
        p99_ms: summary.p99 as f64 / 1e6,
        mean_ms: hist.mean() / 1e6,
        remote_fraction: cluster.metrics.remote_fraction(),
        cpu_utilization: cluster.mean_utilization(&snapshots, start, now),
        completed: cluster.metrics.completed,
        submitted: cluster.metrics.submitted,
        rejected: cluster.metrics.rejected,
        timed_out: cluster.metrics.timed_out,
        forwarded_messages: cluster.metrics.forwarded_messages,
        stale_responses: cluster.metrics.stale_responses,
        migrations: cluster.metrics.migrations,
        throughput_per_s: cluster.metrics.completed as f64 / measure.as_secs_f64().max(1e-9),
        retries: cluster.metrics.retries,
        retry_backoff_ms: cluster.metrics.retry_backoff_ns as f64 / 1e6,
        directory_repairs: cluster.metrics.directory_repairs,
        false_suspicion_repairs: cluster.metrics.false_suspicion_repairs,
        shed_no_live: cluster.metrics.shed_no_live,
        slo_alerts_opened: cluster.metrics.slo_alerts_opened,
        slo_alerts_closed: cluster.metrics.slo_alerts_closed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::RuntimeConfig;
    use actop_workloads::{uniform, UniformWorkload};

    #[test]
    fn steady_state_summary_is_filled() {
        let cfg = uniform::counter(2_000.0, Nanos::from_secs(6), 3);
        let (app, driver) = UniformWorkload::build(cfg);
        let mut cluster = Cluster::new(RuntimeConfig::single_server(3), app);
        let mut engine: Engine<Cluster> = Engine::new();
        driver.install(&mut engine);
        let summary = run_steady_state(
            &mut engine,
            &mut cluster,
            Nanos::from_secs(2),
            Nanos::from_secs(4),
        );
        assert!(summary.completed > 6_000, "completed {}", summary.completed);
        assert!(summary.p50_ms > 0.0);
        assert!(summary.p99_ms >= summary.p95_ms && summary.p95_ms >= summary.p50_ms);
        assert!(summary.cpu_utilization > 0.0 && summary.cpu_utilization < 1.0);
        assert!((summary.throughput_per_s - 2_000.0).abs() < 200.0);
        assert_eq!(summary.rejected, 0);
    }

    #[test]
    fn improvement_metric() {
        let mut a = RunSummary {
            p50_ms: 41.0,
            p95_ms: 450.0,
            p99_ms: 736.0,
            mean_ms: 60.0,
            remote_fraction: 0.9,
            cpu_utilization: 0.8,
            completed: 0,
            submitted: 0,
            rejected: 0,
            timed_out: 0,
            forwarded_messages: 0,
            stale_responses: 0,
            migrations: 0,
            throughput_per_s: 0.0,
            retries: 0,
            retry_backoff_ms: 0.0,
            directory_repairs: 0,
            false_suspicion_repairs: 0,
            shed_no_live: 0,
            slo_alerts_opened: 0,
            slo_alerts_closed: 0,
        };
        let b = RunSummary {
            p50_ms: 24.0,
            p99_ms: 225.0,
            ..a
        };
        a.p95_ms = 450.0;
        let gain = RunSummary::improvement_pct(&a, &b, |s| s.p99_ms);
        assert!((gain - 69.4).abs() < 0.5, "gain {gain}");
    }

    #[test]
    fn second_cpu_util_window_is_independent() {
        let cfg = uniform::counter(1_000.0, Nanos::from_secs(4), 5);
        let (app, driver) = UniformWorkload::build(cfg);
        let mut cluster = Cluster::new(RuntimeConfig::single_server(5), app);
        let mut engine: Engine<Cluster> = Engine::new();
        driver.install(&mut engine);
        let s1 = run_steady_state(
            &mut engine,
            &mut cluster,
            Nanos::from_secs(1),
            Nanos::from_secs(1),
        );
        // Second window continues from the clock, no warmup needed.
        let s2 = run_steady_state(&mut engine, &mut cluster, Nanos::ZERO, Nanos::from_secs(1));
        assert!(s1.cpu_utilization > 0.0);
        assert!(s2.cpu_utilization > 0.0);
    }
}
