//! ActOp: the paper's primary contribution, wired into the actor runtime.
//!
//! Two independent online controllers run per server, exactly as §4 and §5
//! describe:
//!
//! * the **partition agent** periodically initiates the pairwise
//!   coordination protocol against the server whose candidate set promises
//!   the largest communication-cost reduction, migrating actors
//!   transparently while holding the balance constraint;
//! * the **thread agent** drains each stage's measurement window, estimates
//!   the queuing-model parameters (§5.4), re-solves the latency-optimal
//!   allocation (Theorem 2 / KKT), and reconfigures the stage thread pools.
//!
//! [`install_actop`] attaches either or both controllers to a simulated
//! cluster; [`experiment`] provides the steady-state measurement harness
//! shared by the examples and every figure bench.

pub mod controllers;
pub mod experiment;

// The vendored Fx hasher lives in `actop-sketch` (the bottom of the crate
// stack) so every layer can use it; re-exported here so harnesses and
// tests can reach it as `actop_core::fxmap` without a direct dependency.
pub use actop_sketch::fxmap;

pub use controllers::{install_actop, ActOpConfig, PartitionAgentConfig, ThreadAgentConfig};
pub use experiment::{run_steady_state, RunSummary};
