//! The per-server ActOp control loops.
//!
//! Both agents are installed as self-rescheduling simulation events. Their
//! control state (parameter estimators, configuration) travels through the
//! event chain, mirroring a per-server background thread in the real
//! Orleans integration. Control-plane work is modeled as instantaneous:
//! the paper's protocol exchanges candidate sets of bounded size and its
//! measured overhead is negligible next to data-plane traffic.

use actop_partition::{
    build_policy, CostSignals, ExchangePolicy, MigrationCostConfig, PartitionConfig, PolicyHost,
    RepartitionPolicy, RepartitionPolicyKind,
};
use actop_runtime::sharded::{
    migrate_actor_sharded, sharded_age_sketch, sharded_age_sketches, sharded_cost_signals,
    sharded_is_failed, sharded_last_exchange, sharded_locate, sharded_note_exchange,
    sharded_partition_view, sharded_server_sizes,
};
use actop_runtime::ActorId;
use actop_runtime::{Cluster, ShardedCluster};
use actop_seda::estimator::StageKind as EstimatorStageKind;
use actop_seda::{ModelDrivenController, ParamEstimator, QueueLengthController, StageObservation};
use actop_sim::{ConservativeRunner, Engine, GlobalCtx, Nanos};

/// Configuration of the partition agent (§4).
#[derive(Debug, Clone, Copy)]
pub struct PartitionAgentConfig {
    /// The protocol tunables (candidate set size `k`, tolerance `delta`,
    /// cooldown).
    pub protocol: PartitionConfig,
    /// How often each server initiates an exchange.
    pub interval: Nanos,
    /// Sketch aging factor applied once per interval (1.0 disables aging).
    pub sketch_age_factor: f64,
    /// Which repartitioning algorithm the agent drives. The default is the
    /// paper's exchange protocol, scheduled byte-identically to the
    /// pre-policy agent.
    pub policy: RepartitionPolicyKind,
    /// Migration-cost amortization settings; consumed only by
    /// [`RepartitionPolicyKind::ExchangeCostAware`].
    pub cost: MigrationCostConfig,
}

impl Default for PartitionAgentConfig {
    fn default() -> Self {
        Self::with_interval(Nanos::from_secs(10))
    }
}

impl PartitionAgentConfig {
    /// An agent with the given exchange interval and a coherent cooldown
    /// (half the interval). The paper's production deployment used a
    /// one-minute cooldown against minute-scale graph churn; scale the
    /// interval with your churn instead of inheriting that constant.
    pub fn with_interval(interval: Nanos) -> Self {
        PartitionAgentConfig {
            protocol: PartitionConfig {
                exchange_cooldown_ns: interval.as_nanos() / 2,
                ..PartitionConfig::default()
            },
            interval,
            sketch_age_factor: 0.8,
            policy: RepartitionPolicyKind::default(),
            cost: MigrationCostConfig::default(),
        }
    }

    /// The same agent driving a different repartitioning policy.
    pub fn with_policy(mut self, policy: RepartitionPolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

/// Which allocator drives the thread agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThreadAllocatorKind {
    /// ActOp's model-driven allocator (Theorem 2 / KKT).
    ModelDriven {
        /// The thread-count penalty `eta`, seconds per thread.
        eta: f64,
    },
    /// The queue-length threshold baseline (§5.1, Fig. 7).
    QueueLength {
        /// Add a thread above this queue length.
        high_watermark: usize,
        /// Remove a thread below this queue length.
        low_watermark: usize,
    },
}

/// The thread penalty `eta` calibrated for the *simulated* testbed, via
/// the paper's own procedure (§6.2): find the empirically optimal
/// allocation at a reference load, then pick the `eta` whose solution
/// matches it. The paper's 100 µs/thread applied to its physical servers;
/// the simulator's multithreading tax is milder, hence the smaller value.
pub const ETA_SIM_CALIBRATED: f64 = 3e-6;

/// Configuration of the thread agent (§5).
#[derive(Debug, Clone, Copy)]
pub struct ThreadAgentConfig {
    /// Re-solve period.
    pub interval: Nanos,
    /// The allocator.
    pub allocator: ThreadAllocatorKind,
    /// Whether the worker stage performs synchronous blocking calls
    /// (selects the estimator's `S0` set, §5.4).
    pub worker_blocking: bool,
    /// EWMA smoothing for the parameter estimates.
    pub smoothing: f64,
}

impl Default for ThreadAgentConfig {
    fn default() -> Self {
        ThreadAgentConfig {
            interval: Nanos::from_secs(5),
            allocator: ThreadAllocatorKind::ModelDriven {
                eta: ETA_SIM_CALIBRATED,
            },
            worker_blocking: false,
            smoothing: 0.4,
        }
    }
}

/// Full ActOp configuration: enable either optimization independently
/// (the paper evaluates them separately in §6.1/§6.2 and together in
/// §6.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ActOpConfig {
    /// The locality-aware partition agent, if enabled.
    pub partition: Option<PartitionAgentConfig>,
    /// The thread-allocation agent, if enabled.
    pub threads: Option<ThreadAgentConfig>,
}

impl ActOpConfig {
    /// Both optimizations with default settings.
    pub fn full() -> Self {
        ActOpConfig {
            partition: Some(PartitionAgentConfig::default()),
            threads: Some(ThreadAgentConfig::default()),
        }
    }

    /// Only actor partitioning (the §6.1 configuration).
    pub fn partition_only() -> Self {
        ActOpConfig {
            partition: Some(PartitionAgentConfig::default()),
            threads: None,
        }
    }

    /// Only thread allocation (the §6.2 configuration).
    pub fn threads_only() -> Self {
        ActOpConfig {
            partition: None,
            threads: Some(ThreadAgentConfig::default()),
        }
    }
}

/// Installs the configured agents on every server of the cluster. Agents
/// are staggered across the interval so servers do not act in lockstep.
pub fn install_actop(engine: &mut Engine<Cluster>, servers: usize, config: &ActOpConfig) {
    if let Some(partition) = config.partition {
        match partition.policy {
            // The exchange protocol (cost-aware or not) keeps the original
            // per-server tick — the default path schedules byte-identically
            // to the pre-policy agent.
            RepartitionPolicyKind::Exchange | RepartitionPolicyKind::ExchangeCostAware => {
                for server in 0..servers {
                    let offset =
                        Nanos(partition.interval.as_nanos() * (server as u64 + 1) / servers as u64);
                    engine.schedule(offset, move |c: &mut Cluster, e| {
                        partition_tick(c, e, server, partition);
                    });
                }
            }
            RepartitionPolicyKind::OneSided | RepartitionPolicyKind::Stream => {
                for server in 0..servers {
                    let offset =
                        Nanos(partition.interval.as_nanos() * (server as u64 + 1) / servers as u64);
                    let policy = build_policy::<ActorId>(partition.policy, partition.cost);
                    engine.schedule(offset, move |c: &mut Cluster, e| {
                        policy_tick(c, e, server, partition, policy);
                    });
                }
            }
            // Global policies run one round per interval over every
            // server's view; their state travels through the event chain.
            RepartitionPolicyKind::DynamicBalanced | RepartitionPolicyKind::Centralized => {
                let policy = build_policy::<ActorId>(partition.policy, partition.cost);
                engine.schedule(partition.interval, move |c: &mut Cluster, e| {
                    global_policy_tick(c, e, partition, policy);
                });
            }
        }
    }
    if let Some(threads) = config.threads {
        for server in 0..servers {
            let offset = Nanos(threads.interval.as_nanos() * (server as u64 + 1) / servers as u64);
            let estimator = ParamEstimator::new(
                vec![
                    EstimatorStageKind { blocking: false },
                    EstimatorStageKind {
                        blocking: threads.worker_blocking,
                    },
                    EstimatorStageKind { blocking: false },
                    EstimatorStageKind { blocking: false },
                ],
                threads.smoothing,
            );
            engine.schedule(offset, move |c: &mut Cluster, e| {
                thread_tick(c, e, server, threads, estimator);
            });
        }
    }
}

/// One partition-agent round for `server` (Alg. 1's initiator side plus
/// the responder's selection, applied to the cluster).
fn partition_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    server: usize,
    config: PartitionAgentConfig,
) {
    let now = engine.now();
    run_partition_round(cluster, engine, now, server, &config);
    if config.sketch_age_factor < 1.0 {
        cluster.servers[server]
            .edge_sketch
            .scale(config.sketch_age_factor);
    }
    engine.schedule_after(config.interval, move |c: &mut Cluster, e| {
        partition_tick(c, e, server, config);
    });
}

/// Executes one initiation of the pairwise protocol. Public so ablation
/// benches can drive rounds manually. Returns the number of migrations.
/// `now` stays an explicit parameter (it stamps the exchange cooldown)
/// while `engine` schedules migration transfer windows.
///
/// With `config.policy == ExchangeCostAware` every candidate move is
/// charged the measured migration tax; any other kind runs the paper's
/// cost-oblivious protocol (byte-identical to the pre-policy agent).
pub fn run_partition_round(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    now: Nanos,
    initiator: usize,
    config: &PartitionAgentConfig,
) -> usize {
    let mut policy = ExchangePolicy {
        cost: (config.policy == RepartitionPolicyKind::ExchangeCostAware).then_some(config.cost),
    };
    let mut host = LegacyHost {
        cluster,
        engine,
        now,
    };
    policy.round(&mut host, now.as_nanos(), initiator, &config.protocol)
}

/// One round of a non-exchange per-server policy, state moving through the
/// event chain.
fn policy_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    server: usize,
    config: PartitionAgentConfig,
    mut policy: Box<dyn RepartitionPolicy<ActorId>>,
) {
    let now = engine.now();
    {
        let mut host = LegacyHost {
            cluster,
            engine,
            now,
        };
        policy.round(&mut host, now.as_nanos(), server, &config.protocol);
    }
    if config.sketch_age_factor < 1.0 {
        cluster.servers[server]
            .edge_sketch
            .scale(config.sketch_age_factor);
    }
    engine.schedule_after(config.interval, move |c: &mut Cluster, e| {
        policy_tick(c, e, server, config, policy);
    });
}

/// One round of a global-scope policy (one interval covers the whole
/// cluster, so every server's sketch ages here).
fn global_policy_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    config: PartitionAgentConfig,
    mut policy: Box<dyn RepartitionPolicy<ActorId>>,
) {
    let now = engine.now();
    {
        let mut host = LegacyHost {
            cluster,
            engine,
            now,
        };
        policy.round(&mut host, now.as_nanos(), 0, &config.protocol);
    }
    if config.sketch_age_factor < 1.0 {
        for server in 0..cluster.server_count() {
            cluster.servers[server]
                .edge_sketch
                .scale(config.sketch_age_factor);
        }
    }
    engine.schedule_after(config.interval, move |c: &mut Cluster, e| {
        global_policy_tick(c, e, config, policy);
    });
}

/// [`PolicyHost`] over the sequential cluster: views and placement come
/// from the live directory/sketches, migrations go through
/// [`Cluster::migrate_actor`] (so transfer windows and pinning rules
/// apply), and cost signals are the cluster's measured counters.
struct LegacyHost<'a, 'b> {
    cluster: &'a mut Cluster,
    engine: &'b mut Engine<Cluster>,
    now: Nanos,
}

impl PolicyHost<ActorId> for LegacyHost<'_, '_> {
    fn servers(&self) -> usize {
        self.cluster.server_count()
    }

    fn view(&mut self, server: usize) -> Vec<(ActorId, Vec<(ActorId, u64)>)> {
        self.cluster.partition_view(server)
    }

    fn locate(&mut self, a: &ActorId) -> Option<usize> {
        self.cluster.locate(*a)
    }

    fn sizes(&mut self) -> Vec<usize> {
        self.cluster.server_sizes()
    }

    fn is_failed(&mut self, server: usize) -> bool {
        self.cluster.is_failed(server)
    }

    fn last_exchange_ns(&mut self, server: usize) -> Option<u64> {
        self.cluster.servers[server].last_exchange_ns
    }

    fn migrate(&mut self, a: ActorId, to: usize) {
        self.cluster.migrate_actor(self.engine, self.now, a, to);
    }

    fn note_exchange(&mut self, p: usize, q: usize) {
        let ns = self.now.as_nanos();
        self.cluster.servers[p].last_exchange_ns = Some(ns);
        self.cluster.servers[q].last_exchange_ns = Some(ns);
    }

    fn cost_signals(&mut self) -> CostSignals {
        self.cluster.migration_cost_signals()
    }
}

/// One thread-agent round for `server`: measure, estimate, re-solve,
/// reconfigure.
fn thread_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    server: usize,
    config: ThreadAgentConfig,
    mut estimator: ParamEstimator,
) {
    let now = engine.now();
    let reports = cluster.drain_stage_stats(now, server);
    let current: [usize; 4] = cluster.servers[server].thread_allocation();
    let next = match config.allocator {
        ThreadAllocatorKind::ModelDriven { eta } => {
            for (i, report) in reports.iter().enumerate() {
                estimator.observe(
                    i,
                    StageObservation {
                        arrivals: report.arrivals,
                        completions: report.completions,
                        window_secs: report.window.as_secs_f64().max(1e-9),
                        sum_wallclock_secs: report.sum_wallclock_ns / 1e9,
                        sum_cpu_secs: report.sum_cpu_ns / 1e9,
                    },
                );
            }
            let cores = cluster.config.costs.cores_per_server;
            let controller = ModelDrivenController::new(eta, cores);
            controller.allocate_from(&estimator).and_then(|alloc| {
                let alloc: [usize; 4] = alloc.try_into().ok()?;
                Some(alloc)
            })
        }
        ThreadAllocatorKind::QueueLength {
            high_watermark,
            low_watermark,
        } => {
            let controller = QueueLengthController {
                high_watermark,
                low_watermark,
                min_threads: 1,
                max_threads: 64,
            };
            let queues = cluster.servers[server].queue_lengths();
            let next = controller.step(&queues, &current);
            next.try_into().ok()
        }
    };
    if let Some(next) = next {
        if next != current {
            cluster.set_stage_threads(engine, server, next);
        }
    }
    engine.schedule_after(config.interval, move |c: &mut Cluster, e| {
        thread_tick(c, e, server, config, estimator);
    });
}

// ---------------------------------------------------------------------
// The same agents on the sharded (conservative-parallel) backend. The
// control loops are serial-phase globals: they read shard-local sketches
// and the shared directory at barriers, where no window is running, so
// the protocol logic is identical to the sequential version.
// ---------------------------------------------------------------------

/// Installs the configured agents on every server of a sharded cluster.
/// Agents are staggered across the interval so servers do not act in
/// lockstep, exactly as [`install_actop`] does.
pub fn install_actop_sharded(
    runner: &mut ConservativeRunner<ShardedCluster>,
    servers: usize,
    config: &ActOpConfig,
) {
    if let Some(partition) = config.partition {
        match partition.policy {
            RepartitionPolicyKind::Exchange | RepartitionPolicyKind::ExchangeCostAware => {
                for server in 0..servers {
                    let offset =
                        Nanos(partition.interval.as_nanos() * (server as u64 + 1) / servers as u64);
                    runner.schedule_global(offset, move |ctx| {
                        partition_tick_sharded(ctx, server, partition);
                    });
                }
            }
            RepartitionPolicyKind::OneSided | RepartitionPolicyKind::Stream => {
                for server in 0..servers {
                    let offset =
                        Nanos(partition.interval.as_nanos() * (server as u64 + 1) / servers as u64);
                    let policy = build_policy::<ActorId>(partition.policy, partition.cost);
                    runner.schedule_global(offset, move |ctx| {
                        policy_tick_sharded(ctx, server, partition, policy);
                    });
                }
            }
            RepartitionPolicyKind::DynamicBalanced | RepartitionPolicyKind::Centralized => {
                let policy = build_policy::<ActorId>(partition.policy, partition.cost);
                runner.schedule_global(partition.interval, move |ctx| {
                    global_policy_tick_sharded(ctx, partition, policy);
                });
            }
        }
    }
    if let Some(threads) = config.threads {
        for server in 0..servers {
            let offset = Nanos(threads.interval.as_nanos() * (server as u64 + 1) / servers as u64);
            let estimator = ParamEstimator::new(
                vec![
                    EstimatorStageKind { blocking: false },
                    EstimatorStageKind {
                        blocking: threads.worker_blocking,
                    },
                    EstimatorStageKind { blocking: false },
                    EstimatorStageKind { blocking: false },
                ],
                threads.smoothing,
            );
            runner.schedule_global(offset, move |ctx| {
                thread_tick_sharded(ctx, server, threads, estimator);
            });
        }
    }
}

/// One partition-agent round for `server` on the sharded backend.
fn partition_tick_sharded(
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    server: usize,
    config: PartitionAgentConfig,
) {
    let now = ctx.now;
    run_partition_round_sharded(ctx, now, server, &config);
    if config.sketch_age_factor < 1.0 {
        sharded_age_sketch(ctx, server, config.sketch_age_factor);
    }
    ctx.schedule_global(now + config.interval, move |ctx| {
        partition_tick_sharded(ctx, server, config);
    });
}

/// Executes one initiation of the pairwise protocol on the sharded
/// backend — the same algorithm as [`run_partition_round`], expressed
/// against the serial-phase helpers. Returns the number of migrations.
pub fn run_partition_round_sharded(
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    now: Nanos,
    initiator: usize,
    config: &PartitionAgentConfig,
) -> usize {
    let mut policy = ExchangePolicy {
        cost: (config.policy == RepartitionPolicyKind::ExchangeCostAware).then_some(config.cost),
    };
    let servers = sharded_server_sizes(ctx).len();
    let mut host = ShardedHost { ctx, now, servers };
    policy.round(&mut host, now.as_nanos(), initiator, &config.protocol)
}

/// One round of a non-exchange per-server policy on the sharded backend.
fn policy_tick_sharded(
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    server: usize,
    config: PartitionAgentConfig,
    mut policy: Box<dyn RepartitionPolicy<ActorId>>,
) {
    let now = ctx.now;
    {
        let servers = sharded_server_sizes(ctx).len();
        let mut host = ShardedHost { ctx, now, servers };
        policy.round(&mut host, now.as_nanos(), server, &config.protocol);
    }
    if config.sketch_age_factor < 1.0 {
        sharded_age_sketch(ctx, server, config.sketch_age_factor);
    }
    ctx.schedule_global(now + config.interval, move |ctx| {
        policy_tick_sharded(ctx, server, config, policy);
    });
}

/// One round of a global-scope policy on the sharded backend; the single
/// interval covers the whole cluster, so every server's sketch ages here.
fn global_policy_tick_sharded(
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    config: PartitionAgentConfig,
    mut policy: Box<dyn RepartitionPolicy<ActorId>>,
) {
    let now = ctx.now;
    {
        let servers = sharded_server_sizes(ctx).len();
        let mut host = ShardedHost { ctx, now, servers };
        policy.round(&mut host, now.as_nanos(), 0, &config.protocol);
    }
    if config.sketch_age_factor < 1.0 {
        sharded_age_sketches(ctx, config.sketch_age_factor);
    }
    ctx.schedule_global(now + config.interval, move |ctx| {
        global_policy_tick_sharded(ctx, config, policy);
    });
}

/// [`PolicyHost`] over the sharded backend. All accessors run in the
/// serial phase (no window in flight), so the shard-local reads and the
/// shared-directory writes behind the `sharded_*` helpers are safe, and
/// migrations commit instantly — there is no transfer window to stall on.
struct ShardedHost<'a, 'b> {
    ctx: &'a mut GlobalCtx<'b, ShardedCluster>,
    now: Nanos,
    /// Precomputed at construction: the trait reads it through `&self`,
    /// but counting servers needs `&mut` access to the context.
    servers: usize,
}

impl PolicyHost<ActorId> for ShardedHost<'_, '_> {
    fn servers(&self) -> usize {
        self.servers
    }

    fn view(&mut self, server: usize) -> Vec<(ActorId, Vec<(ActorId, u64)>)> {
        sharded_partition_view(self.ctx, server)
    }

    fn locate(&mut self, a: &ActorId) -> Option<usize> {
        sharded_locate(self.ctx, *a)
    }

    fn sizes(&mut self) -> Vec<usize> {
        sharded_server_sizes(self.ctx)
    }

    fn is_failed(&mut self, server: usize) -> bool {
        sharded_is_failed(self.ctx, server)
    }

    fn last_exchange_ns(&mut self, server: usize) -> Option<u64> {
        sharded_last_exchange(self.ctx, server)
    }

    fn migrate(&mut self, a: ActorId, to: usize) {
        migrate_actor_sharded(self.ctx, self.now, a, to);
    }

    fn note_exchange(&mut self, p: usize, q: usize) {
        sharded_note_exchange(self.ctx, self.now, p, q);
    }

    fn cost_signals(&mut self) -> CostSignals {
        sharded_cost_signals(self.ctx)
    }
}

/// One thread-agent round for `server` on the sharded backend: measure,
/// estimate, re-solve, reconfigure — all against the shard cell that owns
/// the server.
fn thread_tick_sharded(
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    server: usize,
    config: ThreadAgentConfig,
    mut estimator: ParamEstimator,
) {
    let now = ctx.now;
    let shared = ctx.cell(0).world.shared();
    let shard = shared.topo.shard_of(server);
    let cell = ctx.cell(shard);
    let reports = cell.world.drain_stage_stats(now, server);
    let current: [usize; 4] = cell.world.thread_allocation(server);
    let next = match config.allocator {
        ThreadAllocatorKind::ModelDriven { eta } => {
            for (i, report) in reports.iter().enumerate() {
                estimator.observe(
                    i,
                    StageObservation {
                        arrivals: report.arrivals,
                        completions: report.completions,
                        window_secs: report.window.as_secs_f64().max(1e-9),
                        sum_wallclock_secs: report.sum_wallclock_ns / 1e9,
                        sum_cpu_secs: report.sum_cpu_ns / 1e9,
                    },
                );
            }
            let cores = shared.config.costs.cores_per_server;
            let controller = ModelDrivenController::new(eta, cores);
            controller.allocate_from(&estimator).and_then(|alloc| {
                let alloc: [usize; 4] = alloc.try_into().ok()?;
                Some(alloc)
            })
        }
        ThreadAllocatorKind::QueueLength {
            high_watermark,
            low_watermark,
        } => {
            let controller = QueueLengthController {
                high_watermark,
                low_watermark,
                min_threads: 1,
                max_threads: 64,
            };
            let queues = cell.world.queue_lengths(server);
            let next = controller.step(&queues, &current);
            next.try_into().ok()
        }
    };
    if let Some(next) = next {
        if next != current {
            let cell = ctx.cell(shard);
            cell.world.set_stage_threads(&mut cell.engine, server, next);
        }
    }
    ctx.schedule_global(now + config.interval, move |ctx| {
        thread_tick_sharded(ctx, server, config, estimator);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::app::FixedCostApp;
    use actop_runtime::{PlacementPolicy, RuntimeConfig};
    use actop_workloads::halo::HaloConfig;
    use actop_workloads::HaloWorkload;

    fn fast_partition_config() -> PartitionAgentConfig {
        PartitionAgentConfig {
            protocol: PartitionConfig {
                candidate_set_size: 32,
                imbalance_tolerance: 32,
                exchange_cooldown_ns: 0,
                min_total_score: 1,
            },
            interval: Nanos::from_secs(1),
            sketch_age_factor: 1.0,
            policy: RepartitionPolicyKind::Exchange,
            cost: MigrationCostConfig::default(),
        }
    }

    #[test]
    fn partition_agent_reduces_remote_fraction() {
        let cfg = HaloConfig::paper_scale(1_000, 400.0, Nanos::from_secs(30), 17);
        let (app, workload) = HaloWorkload::build(cfg);
        let mut rt = RuntimeConfig::paper_testbed(17);
        rt.servers = 4;
        let mut cluster = Cluster::new(rt, app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        install_actop(
            &mut engine,
            4,
            &ActOpConfig {
                partition: Some(fast_partition_config()),
                threads: None,
            },
        );
        // Warm up 10 s, then measure the remote share of the rest.
        engine.run_until(&mut cluster, Nanos::from_secs(10));
        let warm_remote = cluster.metrics.remote_fraction();
        cluster.metrics.reset_steady_state();
        engine.run_until(&mut cluster, Nanos::from_secs(30));
        let steady_remote = cluster.metrics.remote_fraction();
        assert!(
            steady_remote < warm_remote * 0.6,
            "remote fraction should fall: warmup {warm_remote:.3} steady {steady_remote:.3}"
        );
        assert!(cluster.metrics.migrations > 0);
    }

    #[test]
    fn partition_agent_respects_balance() {
        let cfg = HaloConfig::paper_scale(1_200, 300.0, Nanos::from_secs(25), 19);
        let (app, workload) = HaloWorkload::build(cfg);
        let mut rt = RuntimeConfig::paper_testbed(19);
        rt.servers = 4;
        let mut cluster = Cluster::new(rt, app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        let agent = fast_partition_config();
        install_actop(
            &mut engine,
            4,
            &ActOpConfig {
                partition: Some(agent),
                threads: None,
            },
        );
        engine.run_until(&mut cluster, Nanos::from_secs(25));
        let sizes = cluster.server_sizes();
        let max = *sizes.iter().max().unwrap() as i64;
        let min = *sizes.iter().min().unwrap() as i64;
        // Pairwise delta plus drift allowance plus opportunistic-limbo
        // noise: sizes must remain in the same ballpark, not collapse onto
        // one server.
        assert!(
            max - min <= 3 * agent.protocol.imbalance_tolerance as i64 + 32,
            "sizes {sizes:?}"
        );
    }

    #[test]
    fn cooldown_rejects_back_to_back_exchanges() {
        // Two servers, strong pull between them; after one exchange the
        // responder is inside its cooldown window and rejects the next
        // initiation, so no migration happens until the window passes.
        let cfg = HaloConfig::paper_scale(500, 200.0, Nanos::from_secs(12), 41);
        let (app, workload) = HaloWorkload::build(cfg);
        let mut rt = RuntimeConfig::paper_testbed(41);
        rt.servers = 2;
        let mut cluster = Cluster::new(rt, app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        // Generate traffic so sketches have signal.
        engine.run_until(&mut cluster, Nanos::from_secs(5));
        let agent = PartitionAgentConfig {
            protocol: PartitionConfig {
                candidate_set_size: 16,
                imbalance_tolerance: 64,
                exchange_cooldown_ns: 60_000_000_000, // One minute, as in §4.2.
                min_total_score: 1,
            },
            interval: Nanos::from_secs(1),
            sketch_age_factor: 1.0,
            policy: RepartitionPolicyKind::Exchange,
            cost: MigrationCostConfig::default(),
        };
        let now = engine.now();
        let first = run_partition_round(&mut cluster, &mut engine, now, 0, &agent);
        assert!(first > 0, "first exchange should move actors");
        let second = run_partition_round(
            &mut cluster,
            &mut engine,
            now + Nanos::from_secs(1),
            1,
            &agent,
        );
        assert_eq!(second, 0, "responder inside cooldown must reject");
        // Past the cooldown the same initiation can succeed again (there
        // is still plenty of remote traffic after one exchange).
        let later = now + Nanos::from_secs(70);
        engine.run_until(&mut cluster, Nanos::from_secs(8));
        let third = run_partition_round(&mut cluster, &mut engine, later, 1, &agent);
        assert!(third > 0, "exchange resumes after cooldown");
    }

    #[test]
    fn thread_agent_reconfigures_under_load() {
        let mut rt = RuntimeConfig::single_server(23);
        rt.initial_threads_per_stage = 8; // Orleans default: way oversized.
        let mut cluster = Cluster::new(
            rt,
            Box::new(FixedCostApp {
                cpu_ns: 50_000.0,
                reply_bytes: 100,
            }),
        );
        let mut engine: Engine<Cluster> = Engine::new();
        // Steady 3 kHz request stream.
        let workload = actop_workloads::uniform::UniformConfig {
            actors: 1_000,
            request_rate: 3_000.0,
            request_bytes: 200,
            reply_bytes: 100,
            cpu_ns: 50_000.0,
            blocking_ns: 0.0,
            duration: Nanos::from_secs(30),
            seed: 23,
        };
        let (_, driver) = actop_workloads::UniformWorkload::build(workload);
        driver.install(&mut engine);
        install_actop(
            &mut engine,
            1,
            &ActOpConfig {
                partition: None,
                threads: Some(ThreadAgentConfig {
                    interval: Nanos::from_secs(2),
                    ..ThreadAgentConfig::default()
                }),
            },
        );
        engine.run_until(&mut cluster, Nanos::from_secs(30));
        let alloc = cluster.servers[0].thread_allocation();
        assert_ne!(alloc, [8, 8, 8, 8], "allocation should change: {alloc:?}");
        // The allocation must fit the core budget (beta = 1 everywhere).
        let total: usize = alloc.iter().sum();
        assert!(total <= 8, "allocation {alloc:?} exceeds 8 cores");
        assert!(alloc.iter().all(|&t| t >= 1));
        // The system still keeps up.
        assert!(
            cluster.metrics.completed as f64 >= 0.95 * cluster.metrics.submitted as f64,
            "completed {} of {}",
            cluster.metrics.completed,
            cluster.metrics.submitted
        );
    }

    #[test]
    fn blocking_workers_get_more_threads_than_cpu_bound_ones() {
        // The §5.2 requirement end to end: two identical services, one
        // whose handlers block on synchronous I/O. The estimator must
        // infer the blocking time via the alpha trick (§5.4) and the
        // solver must hand the blocking worker stage *more* threads (its
        // beta < 1 makes threads cheap in CPU terms).
        let run = |blocking_ns: f64, worker_blocking: bool| {
            let workload = actop_workloads::uniform::UniformConfig {
                actors: 2_000,
                request_rate: 4_000.0,
                request_bytes: 700,
                reply_bytes: 300,
                cpu_ns: 100_000.0,
                blocking_ns,
                duration: Nanos::from_secs(25),
                seed: 37,
            };
            let (app, driver) = actop_workloads::UniformWorkload::build(workload);
            let mut cluster = Cluster::new(RuntimeConfig::single_server(37), app);
            let mut engine: Engine<Cluster> = Engine::new();
            driver.install(&mut engine);
            install_actop(
                &mut engine,
                1,
                &ActOpConfig {
                    partition: None,
                    threads: Some(ThreadAgentConfig {
                        interval: Nanos::from_secs(2),
                        worker_blocking,
                        ..ThreadAgentConfig::default()
                    }),
                },
            );
            engine.run_until(&mut cluster, Nanos::from_secs(25));
            (
                cluster.servers[0].thread_allocation(),
                cluster.metrics.completed,
                cluster.metrics.submitted,
            )
        };
        let (cpu_bound, done_a, sub_a) = run(0.0, false);
        // 1 ms of synchronous blocking per request: the worker stage needs
        // ~4 threads just to cover the wait (lambda * (x + w) = 4.4).
        let (blocking, done_b, sub_b) = run(1_000_000.0, true);
        assert!(
            blocking[1] > cpu_bound[1],
            "blocking workers {blocking:?} vs cpu-bound {cpu_bound:?}"
        );
        assert!(
            blocking[1] >= 5,
            "needs threads to cover the wait: {blocking:?}"
        );
        // Both keep up with the load.
        assert!(done_a as f64 > 0.95 * sub_a as f64);
        assert!(done_b as f64 > 0.95 * sub_b as f64);
    }

    #[test]
    fn queue_length_allocator_also_runs() {
        let mut cluster = Cluster::new(
            RuntimeConfig::single_server(29),
            Box::new(FixedCostApp {
                cpu_ns: 40_000.0,
                reply_bytes: 100,
            }),
        );
        let mut engine: Engine<Cluster> = Engine::new();
        let workload = actop_workloads::uniform::counter(2_000.0, Nanos::from_secs(10), 29);
        let (_, driver) = actop_workloads::UniformWorkload::build(workload);
        driver.install(&mut engine);
        install_actop(
            &mut engine,
            1,
            &ActOpConfig {
                partition: None,
                threads: Some(ThreadAgentConfig {
                    interval: Nanos::from_secs(1),
                    allocator: ThreadAllocatorKind::QueueLength {
                        high_watermark: 100,
                        low_watermark: 10,
                    },
                    worker_blocking: false,
                    smoothing: 0.4,
                }),
            },
        );
        engine.run_until(&mut cluster, Nanos::from_secs(10));
        // With mostly-empty queues the controller walks allocations down.
        let alloc = cluster.servers[0].thread_allocation();
        assert!(alloc.iter().any(|&t| t < 8), "allocation {alloc:?}");
    }

    #[test]
    fn local_placement_plus_partition_agent_rebalances() {
        // Local placement piles everything onto few servers (§3); the
        // exchange protocol only migrates under the balance constraint, so
        // it must not make the skew worse.
        let cfg = HaloConfig::paper_scale(800, 200.0, Nanos::from_secs(20), 31);
        let (app, workload) = HaloWorkload::build(cfg);
        let mut rt = RuntimeConfig::paper_testbed(31);
        rt.servers = 4;
        rt.placement = PlacementPolicy::Local;
        let mut cluster = Cluster::new(rt, app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        install_actop(
            &mut engine,
            4,
            &ActOpConfig {
                partition: Some(fast_partition_config()),
                threads: None,
            },
        );
        engine.run_until(&mut cluster, Nanos::from_secs(10));
        let skew_mid: Vec<usize> = cluster.server_sizes();
        engine.run_until(&mut cluster, Nanos::from_secs(20));
        let skew_end: Vec<usize> = cluster.server_sizes();
        let spread = |s: &[usize]| s.iter().max().unwrap() - s.iter().min().unwrap();
        assert!(
            spread(&skew_end) <= spread(&skew_mid) + 64,
            "skew should not explode: {skew_mid:?} -> {skew_end:?}"
        );
    }
}
