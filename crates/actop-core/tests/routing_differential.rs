//! Differential gate for the hot-path routing overhaul: the dense actor
//! directory, the slab call tables, and the sketch fast path must be
//! observationally identical to the original `HashMap`/`BTreeSet`
//! implementations.
//!
//! The golden numbers below were captured by running these exact
//! workloads on the pre-overhaul implementation (SipHash `HashMap`
//! directory, `HashMap` join/request tables, `BTreeSet` sketch
//! min-tracking). Any divergence in routing decisions — placement,
//! forwarding, migration, join resolution — shifts at least one of the
//! counters or latency quantiles and fails the gate.

use actop_core::controllers::{install_actop, ActOpConfig, PartitionAgentConfig};
use actop_core::experiment::{run_steady_state, RunSummary};
use actop_partition::PartitionConfig;
use actop_runtime::{Cluster, RuntimeConfig};
use actop_sim::{Engine, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::{uniform, HaloWorkload, UniformWorkload};

/// A mid-size Halo run with the partition agent on: exercises placement,
/// migration (directory remove + location hints), fan-out joins, request
/// slab churn, and both edge sketches on every actor-to-actor message.
fn halo_summary() -> RunSummary {
    let warmup = Nanos::from_secs(10);
    let measure = Nanos::from_secs(20);
    let mut cfg = HaloConfig::paper_scale(2_000, 600.0, warmup + measure, 4242);
    cfg.game_duration_s = (30.0, 45.0);
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(4242);
    rt.servers = 4;
    rt.record_remote_call_latency = true;
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    let agent = PartitionAgentConfig {
        protocol: PartitionConfig {
            candidate_set_size: 64,
            imbalance_tolerance: 32,
            exchange_cooldown_ns: 500_000_000,
            min_total_score: 1,
        },
        interval: Nanos::from_secs(1),
        sketch_age_factor: 0.8,
        ..PartitionAgentConfig::default()
    };
    install_actop(
        &mut engine,
        4,
        &ActOpConfig {
            partition: Some(agent),
            threads: None,
        },
    );
    run_steady_state(&mut engine, &mut cluster, warmup, measure)
}

/// A single-server counter run: pure request/response slab churn with no
/// migration, pinning down the request-table and directory fast paths.
fn uniform_summary() -> RunSummary {
    let warmup = Nanos::from_secs(5);
    let measure = Nanos::from_secs(10);
    let cfg = uniform::counter(4_000.0, warmup + measure, 777);
    let (app, driver) = UniformWorkload::build(cfg);
    let mut cluster = Cluster::new(RuntimeConfig::single_server(777), app);
    let mut engine: Engine<Cluster> = Engine::new();
    driver.install(&mut engine);
    run_steady_state(&mut engine, &mut cluster, warmup, measure)
}

fn assert_close(name: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() < 1e-9,
        "{name}: got {got:?}, want {want:?}"
    );
}

#[test]
fn halo_run_summary_matches_hashmap_reference() {
    let s = halo_summary();
    println!("halo golden: {s:?}");
    assert_eq!(
        (
            s.completed,
            s.submitted,
            s.rejected,
            s.timed_out,
            s.forwarded_messages,
            s.stale_responses,
            s.migrations
        ),
        (
            GOLD_HALO_COMPLETED,
            GOLD_HALO_SUBMITTED,
            0,
            0,
            GOLD_HALO_FORWARDED,
            0,
            GOLD_HALO_MIGRATIONS
        )
    );
    assert_close("p50", s.p50_ms, GOLD_HALO_P50);
    assert_close("p99", s.p99_ms, GOLD_HALO_P99);
    assert_close("mean", s.mean_ms, GOLD_HALO_MEAN);
    assert_close("remote", s.remote_fraction, GOLD_HALO_REMOTE);
}

#[test]
fn uniform_run_summary_matches_hashmap_reference() {
    let s = uniform_summary();
    println!("uniform golden: {s:?}");
    assert_eq!(
        (s.completed, s.submitted, s.rejected, s.timed_out),
        (GOLD_UNI_COMPLETED, GOLD_UNI_SUBMITTED, 0, 0)
    );
    assert_close("p50", s.p50_ms, GOLD_UNI_P50);
    assert_close("p99", s.p99_ms, GOLD_UNI_P99);
    assert_close("mean", s.mean_ms, GOLD_UNI_MEAN);
}

// Golden values captured from the pre-overhaul implementation (see module
// docs). Regenerate only if the *workload or runtime semantics* change —
// never to paper over a routing divergence.
const GOLD_HALO_COMPLETED: u64 = 11_930;
const GOLD_HALO_SUBMITTED: u64 = 11_929;
const GOLD_HALO_FORWARDED: u64 = 8_992;
const GOLD_HALO_MIGRATIONS: u64 = 2_338;
const GOLD_HALO_P50: f64 = 3.11296;
const GOLD_HALO_P99: f64 = 5.832704;
const GOLD_HALO_MEAN: f64 = 3.2915174346186085;
const GOLD_HALO_REMOTE: f64 = 0.0764654508573897;
const GOLD_UNI_COMPLETED: u64 = 39_908;
const GOLD_UNI_SUBMITTED: u64 = 39_906;
const GOLD_UNI_P50: f64 = 0.925696;
const GOLD_UNI_P99: f64 = 1.294336;
const GOLD_UNI_MEAN: f64 = 0.9483579594567505;
