//! Property tests for the burn-rate window algebra: the streaming
//! [`SloEngine`] must agree with a naive recompute-from-scratch reference
//! on every bin, and its alert stream must be structurally consistent
//! (opens and closes alternate, episodes nest the violation windows they
//! were triggered by, clip-then-rebase equals filter-then-merge).

use actop_obs::{
    merge_windows, AlertTransition, BinObs, BurnRate, SloEngine, SloKind, SloSpec, Window,
};
use proptest::prelude::*;

/// Naive reference: recompute both window fractions from the full
/// verdict prefix at every bin and run the same open/close state
/// machine.
fn reference_transitions(violated: &[bool], burn: BurnRate) -> Vec<AlertTransition> {
    let mut out = Vec::with_capacity(violated.len());
    let mut open = false;
    for i in 0..violated.len() {
        let frac = |w: usize| {
            let lo = (i + 1).saturating_sub(w);
            let hits = violated[lo..=i].iter().filter(|&&v| v).count();
            hits as f64 / (i + 1 - lo) as f64
        };
        let burning =
            frac(burn.short_bins) >= burn.threshold && frac(burn.long_bins) >= burn.threshold;
        let calm = frac(burn.short_bins) < burn.threshold;
        out.push(if !open && burning {
            open = true;
            AlertTransition::Opened
        } else if open && calm {
            open = false;
            AlertTransition::Closed
        } else {
            AlertTransition::None
        });
    }
    out
}

fn engine_for(burn: BurnRate) -> SloEngine {
    SloEngine::new(
        vec![SloSpec {
            name: "lat".into(),
            kind: SloKind::MeanLatencyBelowMs(100.0),
            burn,
        }],
        1_000_000_000,
    )
}

/// Encodes a violation verdict as a latency bin the spec will classify
/// the same way.
fn obs_for(violated: bool) -> BinObs {
    if violated {
        BinObs {
            count: 2.0,
            sum: 2.0 * 250.0 * 1e6,
        }
    } else {
        BinObs {
            count: 2.0,
            sum: 2.0 * 10.0 * 1e6,
        }
    }
}

fn burn_strategy() -> impl Strategy<Value = BurnRate> {
    // The vendored proptest shim has no `prop_oneof!`; pick the
    // threshold from a fixed menu by index instead.
    (1usize..=8, 0usize..=20, 0usize..4).prop_map(|(short, extra, t)| BurnRate {
        short_bins: short,
        long_bins: short + extra,
        threshold: [0.25, 0.5, 0.75, 1.0][t],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_engine_matches_naive_reference(
        violated in proptest::collection::vec(any::<bool>(), 0..200),
        burn in burn_strategy(),
    ) {
        let mut eng = engine_for(burn);
        let streamed: Vec<AlertTransition> =
            violated.iter().map(|&v| eng.push(0, obs_for(v))).collect();
        prop_assert_eq!(streamed, reference_transitions(&violated, burn));
        prop_assert_eq!(eng.verdicts(0), violated.as_slice());
    }

    #[test]
    fn alert_stream_is_structurally_consistent(
        violated in proptest::collection::vec(any::<bool>(), 0..200),
        burn in burn_strategy(),
    ) {
        let mut eng = engine_for(burn);
        let mut last_open = false;
        for &v in &violated {
            match eng.push(0, obs_for(v)) {
                AlertTransition::Opened => {
                    prop_assert!(!last_open, "open while open");
                    last_open = true;
                }
                AlertTransition::Closed => {
                    prop_assert!(last_open, "close while closed");
                    last_open = false;
                }
                AlertTransition::None => {}
            }
        }
        // Tallies reconcile with the final state.
        prop_assert_eq!(eng.is_open(0), last_open);
        prop_assert_eq!(
            eng.alerts_opened(0) - eng.alerts_closed(0),
            u64::from(last_open)
        );
        // Episodes are ordered and disjoint; all but possibly the last
        // are closed, and an open episode implies the open state.
        let eps = eng.episodes(0);
        prop_assert_eq!(eps.len() as u64, eng.alerts_opened(0));
        for pair in eps.windows(2) {
            prop_assert!(pair[0].close_bin != usize::MAX);
            prop_assert!(pair[0].close_bin <= pair[1].open_bin);
            prop_assert!(pair[0].open_bin < pair[1].open_bin);
        }
        if let Some(last) = eps.last() {
            prop_assert_eq!(last.close_bin == usize::MAX, last_open);
        }
        // An alert can only open on a violated bin (a compliant bin
        // strictly lowers both window fractions below a just-reached
        // threshold only when it wasn't reached, and threshold > 0).
        for ep in eps {
            prop_assert!(violated[ep.open_bin], "opened on a compliant bin");
        }
    }

    #[test]
    fn clip_then_rebase_equals_filter_then_merge(
        violated in proptest::collection::vec(any::<bool>(), 0..120),
        range in (0usize..=120, 0usize..=120),
    ) {
        let (a, b) = range;
        let (first, last) = if a <= b { (a, b) } else { (b, a) };
        let mut eng = engine_for(BurnRate::default());
        for &v in &violated {
            eng.push(0, obs_for(v));
        }
        // Reference: restrict the verdict sequence to [first, last) and
        // merge the restriction — the way bench_chaos historically
        // filtered per-bin stats to the measurement range before merging.
        let lo = first.min(violated.len());
        let hi = last.min(violated.len());
        let expect: Vec<Window> = merge_windows(&violated[lo..hi]);
        prop_assert_eq!(eng.windows_in(0, first, last), expect);
    }

    #[test]
    fn windows_partition_the_violated_bins(
        violated in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let windows = merge_windows(&violated);
        // Every violated bin is covered exactly once; no compliant bin is.
        let mut covered = vec![false; violated.len()];
        for w in &windows {
            prop_assert!(w.start_bin < w.end_bin);
            for (i, bin) in covered.iter_mut().enumerate().take(w.end_bin).skip(w.start_bin) {
                prop_assert!(!*bin, "bin {i} covered twice");
                *bin = true;
            }
        }
        prop_assert_eq!(covered, violated);
        // Maximality: windows are separated by at least one compliant bin.
        for pair in windows.windows(2) {
            prop_assert!(pair[0].end_bin < pair[1].start_bin);
        }
    }
}
