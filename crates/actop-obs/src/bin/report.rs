//! `report` — render an instrumented run's scrape JSONL into a
//! self-contained HTML report.
//!
//! ```text
//! report <scrape.jsonl> [--out report.html] [--trace spans.jsonl] [--prom metrics.prom]
//! ```
//!
//! * `<scrape.jsonl>` — the artifact written by `ACTOP_OBS=<path>`.
//! * `--out` — output path; defaults to the input path with `.html`
//!   appended.
//! * `--trace` — optional span JSONL export; adds a span-kind census.
//! * `--prom` — optional Prometheus exposition file to validate (the
//!   `.prom` sibling the bench writes); errors are fatal so CI can use
//!   this flag as the exposition parser check.
//!
//! The HTML is a pure function of the inputs: same files in, same bytes
//! out.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: report <scrape.jsonl> [--out report.html] [--trace spans.jsonl] [--prom metrics.prom]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut out = None;
    let mut trace = None;
    let mut prom = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().cloned(),
            "--trace" => trace = it.next().cloned(),
            "--prom" => prom = it.next().cloned(),
            "--help" | "-h" => return usage(),
            flag if flag.starts_with('-') => {
                eprintln!("report: unknown flag '{flag}'");
                return usage();
            }
            path => {
                if input.replace(path.to_string()).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(input) = input else { return usage() };

    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("report: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match actop_obs::parse_scrape_jsonl(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("report: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let spans = match &trace {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("report: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match actop_trace::parse_spans_jsonl(&text) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("report: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    if let Some(path) = &prom {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match actop_obs::validate_exposition(&text) {
            Ok(stats) => println!(
                "exposition ok: {} families, {} samples, {} histogram series",
                stats.families, stats.samples, stats.histograms
            ),
            Err(e) => {
                eprintln!("report: {path}: invalid exposition: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let html = actop_obs::render_html(&doc, spans.as_deref());
    let out = out.unwrap_or_else(|| format!("{input}.html"));
    if let Err(e) = std::fs::write(&out, &html) {
        eprintln!("report: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "report: {} frames, {} alerts, {} faults -> {out}",
        doc.frames.len(),
        doc.alerts.len(),
        doc.faults.len()
    );
    ExitCode::SUCCESS
}
