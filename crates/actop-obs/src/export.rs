//! Scrape exporters: the JSONL scrape stream, its parser, and the
//! Prometheus-style text exposition.
//!
//! The JSONL stream is the durable artifact of an instrumented run. It is
//! line-oriented so it can be diffed, grepped, and streamed:
//!
//! ```text
//! {"type":"header","version":1,"seed":42,"interval_ns":1000000000,"metrics":[...]}
//! {"type":"frame","t_ns":1000000000,"v":[12,0.5,{"c":[3,1,0],"sum":812,"n":4}]}
//! {"type":"alert","slo":"latency_mean","state":"open","t_ns":...,"bin":7}
//! {"type":"fault","name":"crash","server":3,"start_ns":...,"end_ns":...}
//! {"type":"slo","name":"latency_mean","windows":[[2,5]],"opened":1,"closed":1}
//! {"type":"summary","completed":2420,...}
//! {"type":"engine","events":227646,...}
//! ```
//!
//! Frame values appear in metric-registration order (the header's
//! `metrics` array is the decoder key): counters as integers, gauges as
//! JSON numbers, histograms as `{"c":[per-bucket counts],"sum":,"n":}`.
//! Everything emitted is a deterministic function of sim state — no
//! wall-clock, no environment — so one seed yields one byte string. The
//! fault/alert/slo annotation lines are written by the run harness (the
//! bench binaries), not the registry, which keeps `actop-obs` free of a
//! dependency on the chaos crate.
//!
//! The exposition format is the Prometheus text format (hand-rolled like
//! the trace JSON parser — the workspace vendors no deps): `# TYPE` per
//! family, cumulative `le` buckets plus `_sum`/`_count` for histograms.

use crate::registry::{Frame, FrameValue, MetricDef, MetricKind, Registry};
use actop_trace::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Formats an f64 as a JSON number.
///
/// # Panics
///
/// Panics on non-finite input — nothing the registry stores should be
/// NaN/inf, and silently writing `null` would corrupt the artifact.
fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "non-finite metric value {v}");
    format!("{v}")
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A fault-plan annotation destined for the scrape stream and the report
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultNote {
    /// Fault kind ("crash", "rate", "link", ...).
    pub name: String,
    /// Affected server, if server-scoped.
    pub server: Option<u32>,
    /// When the fault started, sim ns.
    pub start_ns: u64,
    /// When it cleared, sim ns; `None` if it never did.
    pub end_ns: Option<u64>,
}

/// An alert open/close annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertNote {
    /// SLO spec name.
    pub slo: String,
    /// `true` for open, `false` for close.
    pub open: bool,
    /// Sim time of the transition.
    pub t_ns: u64,
    /// Bin index (engine-relative) of the transition.
    pub bin: u64,
}

/// Per-SLO outcome annotation: violation windows and alert tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloNote {
    /// SLO spec name.
    pub name: String,
    /// Merged violation windows as `(start_bin, end_bin)` pairs.
    pub windows: Vec<(u64, u64)>,
    /// Alerts opened.
    pub opened: u64,
    /// Alerts closed.
    pub closed: u64,
}

/// Streaming writer for the scrape JSONL artifact.
#[derive(Debug, Clone)]
pub struct ScrapeWriter {
    out: String,
}

impl ScrapeWriter {
    /// Starts a document: writes the header line carrying the seed, the
    /// scrape cadence, and the metric schema.
    pub fn new(seed: u64, interval_ns: u64, defs: &[MetricDef]) -> Self {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"header\",\"version\":1,\"seed\":{seed},\"interval_ns\":{interval_ns},\"metrics\":["
        );
        for (i, d) in defs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\"",
                json_escape(&d.name),
                d.kind.name()
            );
            if !d.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in d.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
                }
                out.push('}');
            }
            if !d.bounds.is_empty() {
                out.push_str(",\"bounds\":[");
                for (j, b) in d.bounds.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}\n");
        ScrapeWriter { out }
    }

    /// Writes one scrape frame.
    pub fn frame(&mut self, frame: &Frame) {
        let _ = write!(
            self.out,
            "{{\"type\":\"frame\",\"t_ns\":{},\"v\":[",
            frame.t_ns
        );
        for (i, v) in frame.values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            match v {
                FrameValue::Counter(c) => {
                    let _ = write!(self.out, "{c}");
                }
                FrameValue::Gauge(g) => self.out.push_str(&fmt_f64(*g)),
                FrameValue::Hist { counts, sum, count } => {
                    self.out.push_str("{\"c\":[");
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            self.out.push(',');
                        }
                        let _ = write!(self.out, "{c}");
                    }
                    let _ = write!(self.out, "],\"sum\":{sum},\"n\":{count}}}");
                }
            }
        }
        self.out.push_str("]}\n");
    }

    /// Writes every frame the registry retained.
    pub fn frames(&mut self, reg: &Registry) {
        for f in reg.frames() {
            self.frame(f);
        }
    }

    /// Writes an alert transition annotation.
    pub fn alert(&mut self, note: &AlertNote) {
        let _ = writeln!(
            self.out,
            "{{\"type\":\"alert\",\"slo\":\"{}\",\"state\":\"{}\",\"t_ns\":{},\"bin\":{}}}",
            json_escape(&note.slo),
            if note.open { "open" } else { "close" },
            note.t_ns,
            note.bin
        );
    }

    /// Writes a fault annotation.
    pub fn fault(&mut self, note: &FaultNote) {
        let _ = write!(
            self.out,
            "{{\"type\":\"fault\",\"name\":\"{}\",\"server\":",
            json_escape(&note.name)
        );
        match note.server {
            Some(s) => {
                let _ = write!(self.out, "{s}");
            }
            None => self.out.push_str("null"),
        }
        let _ = write!(self.out, ",\"start_ns\":{},\"end_ns\":", note.start_ns);
        match note.end_ns {
            Some(e) => {
                let _ = write!(self.out, "{e}");
            }
            None => self.out.push_str("null"),
        }
        self.out.push_str("}\n");
    }

    /// Writes a per-SLO outcome annotation.
    pub fn slo(&mut self, note: &SloNote) {
        let _ = write!(
            self.out,
            "{{\"type\":\"slo\",\"name\":\"{}\",\"windows\":[",
            json_escape(&note.name)
        );
        for (i, (s, e)) in note.windows.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "[{s},{e}]");
        }
        let _ = writeln!(
            self.out,
            "],\"opened\":{},\"closed\":{}}}",
            note.opened, note.closed
        );
    }

    /// Writes a key/value annotation line of the given `type`. Values
    /// must be finite.
    pub fn kv_line(&mut self, line_type: &str, pairs: &[(&str, f64)]) {
        let _ = write!(self.out, "{{\"type\":\"{}\"", json_escape(line_type));
        for (k, v) in pairs {
            let _ = write!(self.out, ",\"{}\":{}", json_escape(k), fmt_f64(*v));
        }
        self.out.push_str("}\n");
    }

    /// Writes the run-summary annotation.
    pub fn summary(&mut self, pairs: &[(&str, f64)]) {
        self.kv_line("summary", pairs);
    }

    /// Writes the engine self-metrics annotation. Only deterministic
    /// quantities belong here (event/op counts) — wall-clock timings are
    /// machine-dependent and would break byte-identical artifacts.
    pub fn engine(&mut self, pairs: &[(&str, f64)]) {
        self.kv_line("engine", pairs);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed scrape document.
#[derive(Debug, Clone, Default)]
pub struct ScrapeDoc {
    /// Run seed from the header.
    pub seed: u64,
    /// Scrape cadence from the header, ns.
    pub interval_ns: u64,
    /// Metric schema in wire order.
    pub defs: Vec<MetricDef>,
    /// Scrape frames in time order.
    pub frames: Vec<Frame>,
    /// Alert transitions.
    pub alerts: Vec<AlertNote>,
    /// Fault annotations.
    pub faults: Vec<FaultNote>,
    /// Per-SLO outcomes.
    pub slos: Vec<SloNote>,
    /// Run-summary pairs, line order.
    pub summary: Vec<(String, f64)>,
    /// Engine self-metric pairs, line order.
    pub engine: Vec<(String, f64)>,
}

impl ScrapeDoc {
    /// Index of the first metric with this family name, if registered.
    pub fn metric(&self, name: &str) -> Option<usize> {
        self.defs.iter().position(|d| d.name == name)
    }

    /// Indices of every metric in this family, wire order.
    pub fn family(&self, name: &str) -> Vec<usize> {
        (0..self.defs.len())
            .filter(|&i| self.defs[i].name == name)
            .collect()
    }
}

fn num(v: &Json, what: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{what}: not a number"))
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing '{key}'"))
}

fn num_field(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    num(field(obj, key, what)?, &format!("{what}.{key}"))
}

fn str_field(obj: &Json, key: &str, what: &str) -> Result<String, String> {
    field(obj, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}.{key}: not a string"))
}

fn parse_defs(metrics: &[Json]) -> Result<Vec<MetricDef>, String> {
    let mut defs = Vec::with_capacity(metrics.len());
    for (i, m) in metrics.iter().enumerate() {
        let what = format!("metrics[{i}]");
        let kind = match str_field(m, "kind", &what)?.as_str() {
            "counter" => MetricKind::Counter,
            "gauge" => MetricKind::Gauge,
            "histogram" => MetricKind::Histogram,
            other => return Err(format!("{what}: unknown kind '{other}'")),
        };
        let labels = match m.get("labels") {
            Some(Json::Obj(map)) => map
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("{what}: label '{k}' not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(format!("{what}: 'labels' not an object")),
            None => Vec::new(),
        };
        let bounds = match m.get("bounds") {
            Some(b) => b
                .as_array()
                .ok_or_else(|| format!("{what}: 'bounds' not an array"))?
                .iter()
                .map(|x| num(x, &format!("{what}.bounds")).map(|f| f as u64))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        defs.push(MetricDef {
            name: str_field(m, "name", &what)?,
            labels,
            kind,
            bounds,
        });
    }
    Ok(defs)
}

fn parse_frame(obj: &Json, defs: &[MetricDef], line: usize) -> Result<Frame, String> {
    let what = format!("line {line} frame");
    let t_ns = num_field(obj, "t_ns", &what)? as u64;
    let vals = field(obj, "v", &what)?
        .as_array()
        .ok_or_else(|| format!("{what}: 'v' not an array"))?;
    if vals.len() != defs.len() {
        return Err(format!(
            "{what}: {} values for {} metrics",
            vals.len(),
            defs.len()
        ));
    }
    let mut values = Vec::with_capacity(vals.len());
    for (d, v) in defs.iter().zip(vals) {
        let value = match d.kind {
            MetricKind::Counter => FrameValue::Counter(num(v, &what)? as u64),
            MetricKind::Gauge => FrameValue::Gauge(num(v, &what)?),
            MetricKind::Histogram => {
                let counts = field(v, "c", &what)?
                    .as_array()
                    .ok_or_else(|| format!("{what}: hist 'c' not an array"))?
                    .iter()
                    .map(|x| num(x, &what).map(|f| f as u64))
                    .collect::<Result<Vec<_>, _>>()?;
                if counts.len() != d.bounds.len() + 1 {
                    return Err(format!(
                        "{what}: {} buckets for {} bounds",
                        counts.len(),
                        d.bounds.len()
                    ));
                }
                FrameValue::Hist {
                    counts,
                    sum: num_field(v, "sum", &what)? as u64,
                    count: num_field(v, "n", &what)? as u64,
                }
            }
        };
        values.push(value);
    }
    Ok(Frame { t_ns, values })
}

/// Parses a scrape JSONL document back into structured form. Validates
/// the header-first discipline, frame arity against the schema, and
/// frame-time monotonicity.
pub fn parse_scrape_jsonl(text: &str) -> Result<ScrapeDoc, String> {
    let mut doc = ScrapeDoc::default();
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let obj = parse_json(raw).map_err(|e| format!("line {line}: {e}"))?;
        let ty = str_field(&obj, "type", &format!("line {line}"))?;
        if !saw_header && ty != "header" {
            return Err(format!("line {line}: '{ty}' before header"));
        }
        match ty.as_str() {
            "header" => {
                if saw_header {
                    return Err(format!("line {line}: duplicate header"));
                }
                saw_header = true;
                doc.seed = num_field(&obj, "seed", "header")? as u64;
                doc.interval_ns = num_field(&obj, "interval_ns", "header")? as u64;
                let metrics = field(&obj, "metrics", "header")?
                    .as_array()
                    .ok_or("header: 'metrics' not an array")?;
                doc.defs = parse_defs(metrics)?;
            }
            "frame" => {
                let f = parse_frame(&obj, &doc.defs, line)?;
                if let Some(prev) = doc.frames.last() {
                    if f.t_ns <= prev.t_ns {
                        return Err(format!(
                            "line {line}: frame time {} <= previous {}",
                            f.t_ns, prev.t_ns
                        ));
                    }
                }
                doc.frames.push(f);
            }
            "alert" => {
                let what = format!("line {line} alert");
                doc.alerts.push(AlertNote {
                    slo: str_field(&obj, "slo", &what)?,
                    open: match str_field(&obj, "state", &what)?.as_str() {
                        "open" => true,
                        "close" => false,
                        other => return Err(format!("{what}: bad state '{other}'")),
                    },
                    t_ns: num_field(&obj, "t_ns", &what)? as u64,
                    bin: num_field(&obj, "bin", &what)? as u64,
                });
            }
            "fault" => {
                let what = format!("line {line} fault");
                let server = match field(&obj, "server", &what)? {
                    Json::Null => None,
                    v => Some(num(v, &what)? as u32),
                };
                let end_ns = match field(&obj, "end_ns", &what)? {
                    Json::Null => None,
                    v => Some(num(v, &what)? as u64),
                };
                doc.faults.push(FaultNote {
                    name: str_field(&obj, "name", &what)?,
                    server,
                    start_ns: num_field(&obj, "start_ns", &what)? as u64,
                    end_ns,
                });
            }
            "slo" => {
                let what = format!("line {line} slo");
                let windows = field(&obj, "windows", &what)?
                    .as_array()
                    .ok_or_else(|| format!("{what}: 'windows' not an array"))?
                    .iter()
                    .map(|w| {
                        let pair = w
                            .as_array()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| format!("{what}: window not a pair"))?;
                        Ok((num(&pair[0], &what)? as u64, num(&pair[1], &what)? as u64))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                doc.slos.push(SloNote {
                    name: str_field(&obj, "name", &what)?,
                    windows,
                    opened: num_field(&obj, "opened", &what)? as u64,
                    closed: num_field(&obj, "closed", &what)? as u64,
                });
            }
            "summary" | "engine" => {
                let pairs = match &obj {
                    Json::Obj(map) => map
                        .iter()
                        .filter(|(k, _)| k.as_str() != "type")
                        .map(|(k, v)| {
                            num(v, &format!("line {line} {ty}.{k}")).map(|f| (k.clone(), f))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(format!("line {line}: not an object")),
                };
                if ty == "summary" {
                    doc.summary = pairs;
                } else {
                    doc.engine = pairs;
                }
            }
            other => return Err(format!("line {line}: unknown type '{other}'")),
        }
    }
    if !saw_header {
        return Err("empty document: no header line".into());
    }
    Ok(doc)
}

/// Escapes a label value for the exposition format.
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", label_escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", label_escape(v));
    }
    out.push('}');
}

/// Renders the registry's current values in the Prometheus text
/// exposition format: one `# TYPE` per family (first-seen order), then
/// every sample of that family; histograms as cumulative `le` buckets
/// plus `_sum` and `_count`.
pub fn exposition(reg: &Registry) -> String {
    let defs = reg.defs();
    let mut families: Vec<&str> = Vec::new();
    for d in defs {
        if !families.contains(&d.name.as_str()) {
            families.push(&d.name);
        }
    }
    let mut out = String::new();
    for fam in families {
        let ids: Vec<usize> = (0..defs.len()).filter(|&i| defs[i].name == fam).collect();
        let kind = defs[ids[0]].kind;
        let _ = writeln!(out, "# TYPE {fam} {}", kind.name());
        for i in ids {
            let d = &defs[i];
            match reg.current(crate::registry::MetricId(i as u32)) {
                FrameValue::Counter(v) => {
                    out.push_str(fam);
                    render_labels(&mut out, &d.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                FrameValue::Gauge(v) => {
                    out.push_str(fam);
                    render_labels(&mut out, &d.labels, None);
                    let _ = writeln!(out, " {}", fmt_f64(v));
                }
                FrameValue::Hist { counts, sum, count } => {
                    let mut cum = 0u64;
                    for (j, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if j < d.bounds.len() {
                            d.bounds[j].to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = write!(out, "{fam}_bucket");
                        render_labels(&mut out, &d.labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{fam}_sum");
                    render_labels(&mut out, &d.labels, None);
                    let _ = writeln!(out, " {sum}");
                    let _ = write!(out, "{fam}_count");
                    render_labels(&mut out, &d.labels, None);
                    let _ = writeln!(out, " {count}");
                }
            }
        }
    }
    out
}

/// Summary of a validated exposition document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpoStats {
    /// `# TYPE` families.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
    /// Histogram series (distinct label sets) checked for cumulative
    /// bucket consistency.
    pub histograms: usize,
}

/// Splits an exposition sample line into (metric name, label text, value).
fn split_sample(line: &str) -> Result<(&str, &str, f64), String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample '{line}': no value separator"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("sample '{line}': bad value"))?;
    let (name, labels) = match head.find('{') {
        Some(pos) => {
            if !head.ends_with('}') {
                return Err(format!("sample '{line}': unterminated labels"));
            }
            (&head[..pos], &head[pos + 1..head.len() - 1])
        }
        None => (head, ""),
    };
    if name.is_empty() {
        return Err(format!("sample '{line}': empty metric name"));
    }
    Ok((name, labels, value))
}

/// Validates a Prometheus text exposition: every sample belongs to a
/// declared `# TYPE` family, histogram buckets are cumulative
/// (non-decreasing, `+Inf` present and equal to `_count`), and counter
/// samples are non-negative.
pub fn validate_exposition(text: &str) -> Result<ExpoStats, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, labels-without-le) -> (bucket values in order, saw_inf, inf value)
    let mut hist_buckets: BTreeMap<(String, String), Vec<(String, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut stats = ExpoStats::default();

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(k), None) => (n, k),
                _ => return Err(format!("bad TYPE line '{line}'")),
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("TYPE '{name}': unknown kind '{kind}'"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("duplicate TYPE for '{name}'"));
            }
            stats.families += 1;
            continue;
        }
        if line.starts_with('#') {
            continue; // comments / HELP
        }
        let (name, labels, value) = split_sample(line)?;
        stats.samples += 1;
        // Resolve the family: histogram samples use suffixed names.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                    .map(|base| (base, *suf))
            })
            .map(|(base, suf)| (base.to_string(), suf));
        match family {
            Some((base, "_bucket")) => {
                // Split off the `le` label; order within the line is
                // whatever the producer emitted, so scan pairs.
                let mut le = None;
                let mut rest = Vec::new();
                for part in labels.split(',').filter(|p| !p.is_empty()) {
                    match part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
                        Some(v) => le = Some(v.to_string()),
                        None => rest.push(part),
                    }
                }
                let le = le.ok_or_else(|| format!("bucket '{line}': no le label"))?;
                hist_buckets
                    .entry((base, rest.join(",")))
                    .or_default()
                    .push((le, value));
            }
            Some((base, "_count")) => {
                hist_counts.insert((base, labels.to_string()), value);
            }
            Some((_, _)) => {} // _sum: no invariant beyond being numeric
            None => {
                let kind = types
                    .get(name)
                    .ok_or_else(|| format!("sample '{name}' has no TYPE"))?;
                if kind == "histogram" {
                    return Err(format!("bare sample '{name}' for histogram family"));
                }
                if kind == "counter" && value < 0.0 {
                    return Err(format!("counter '{name}' is negative"));
                }
            }
        }
    }

    for ((family, labels), buckets) in &hist_buckets {
        let mut prev = f64::NEG_INFINITY;
        let mut inf = None;
        for (le, v) in buckets {
            if *v < prev {
                return Err(format!(
                    "histogram '{family}{{{labels}}}': bucket le={le} not cumulative"
                ));
            }
            prev = *v;
            if le == "+Inf" {
                inf = Some(*v);
            }
        }
        let inf = inf.ok_or_else(|| format!("histogram '{family}{{{labels}}}': no +Inf bucket"))?;
        match hist_counts.get(&(family.clone(), labels.clone())) {
            Some(&count) if count == inf => {}
            Some(&count) => {
                return Err(format!(
                    "histogram '{family}{{{labels}}}': +Inf {inf} != _count {count}"
                ))
            }
            None => return Err(format!("histogram '{family}{{{labels}}}': no _count")),
        }
        stats.histograms += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let mut r = Registry::new(16);
        let c = r.counter("requests_total", &[("class", "halo")]);
        let g0 = r.gauge("queue_len", &[("server", "0")]);
        let g1 = r.gauge("queue_len", &[("server", "1")]);
        let h = r.histogram("latency_ns", &[], &[1_000, 10_000]);
        r.set_counter(c, 7);
        r.set_gauge(g0, 1.5);
        r.set_gauge(g1, 0.0);
        r.observe(h, 500);
        r.observe(h, 5_000);
        r.observe(h, 50_000);
        r.scrape(1_000_000_000);
        r.set_counter(c, 12);
        r.observe(h, 700);
        r.scrape(2_000_000_000);
        r
    }

    #[test]
    fn jsonl_round_trips() {
        let reg = sample_registry();
        let mut w = ScrapeWriter::new(42, 1_000_000_000, reg.defs());
        w.frames(&reg);
        w.alert(&AlertNote {
            slo: "latency_mean".into(),
            open: true,
            t_ns: 1_000_000_000,
            bin: 0,
        });
        w.fault(&FaultNote {
            name: "crash".into(),
            server: Some(3),
            start_ns: 500,
            end_ns: None,
        });
        w.slo(&SloNote {
            name: "latency_mean".into(),
            windows: vec![(2, 5), (7, 8)],
            opened: 1,
            closed: 1,
        });
        w.summary(&[("completed", 2420.0), ("p99_ms", 3.25)]);
        w.engine(&[("events", 227646.0)]);
        let text = w.finish();

        let doc = parse_scrape_jsonl(&text).unwrap();
        assert_eq!(doc.seed, 42);
        assert_eq!(doc.interval_ns, 1_000_000_000);
        assert_eq!(doc.defs, reg.defs());
        assert_eq!(doc.frames.len(), 2);
        let frames: Vec<&Frame> = reg.frames().collect();
        assert_eq!(&doc.frames[0], frames[0]);
        assert_eq!(&doc.frames[1], frames[1]);
        assert_eq!(doc.alerts.len(), 1);
        assert!(doc.alerts[0].open);
        assert_eq!(doc.faults[0].server, Some(3));
        assert_eq!(doc.faults[0].end_ns, None);
        assert_eq!(doc.slos[0].windows, vec![(2, 5), (7, 8)]);
        assert_eq!(doc.summary[0], ("completed".to_string(), 2420.0));
        assert_eq!(doc.engine[0], ("events".to_string(), 227646.0));
        assert_eq!(doc.metric("queue_len"), Some(1));
        assert_eq!(doc.family("queue_len"), vec![1, 2]);
    }

    #[test]
    fn writer_is_deterministic() {
        let build = || {
            let reg = sample_registry();
            let mut w = ScrapeWriter::new(42, 1_000_000_000, reg.defs());
            w.frames(&reg);
            w.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_scrape_jsonl("").is_err());
        assert!(parse_scrape_jsonl("{\"type\":\"frame\",\"t_ns\":1,\"v\":[]}").is_err());
        let reg = sample_registry();
        let mut w = ScrapeWriter::new(1, 1, reg.defs());
        w.frames(&reg);
        let good = w.finish();
        // Truncate a frame's value array → arity error.
        let bad = good.replace(",0,", ",");
        assert!(parse_scrape_jsonl(&bad).is_err());
    }

    #[test]
    fn parser_rejects_non_monotone_frames() {
        let reg = sample_registry();
        let mut w = ScrapeWriter::new(1, 1, reg.defs());
        let frames: Vec<Frame> = reg.frames().cloned().collect();
        w.frame(&frames[1]);
        w.frame(&frames[0]);
        let err = parse_scrape_jsonl(&w.finish()).unwrap_err();
        assert!(err.contains("frame time"), "got: {err}");
    }

    #[test]
    fn exposition_renders_and_validates() {
        let reg = sample_registry();
        let text = exposition(&reg);
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{class=\"halo\"} 12"));
        assert!(text.contains("queue_len{server=\"0\"} 1.5"));
        assert!(text.contains("latency_ns_bucket{le=\"1000\"} 2"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("latency_ns_count 4"));
        let stats = validate_exposition(&text).unwrap();
        assert_eq!(stats.families, 3);
        assert_eq!(stats.histograms, 1);
        assert!(stats.samples >= 8);
    }

    #[test]
    fn exposition_validator_catches_broken_histograms() {
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 10\nh_count 3\n";
        assert!(validate_exposition(bad)
            .unwrap_err()
            .contains("not cumulative"));
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        let mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
        assert!(validate_exposition(mismatch)
            .unwrap_err()
            .contains("_count"));
        let untyped = "c_total 5\n";
        assert!(validate_exposition(untyped)
            .unwrap_err()
            .contains("no TYPE"));
    }

    #[test]
    fn merged_registries_export_identically_to_single() {
        // Two shards each observing half the traffic must serialize to
        // the same frames as one registry observing all of it.
        let mk = || {
            let mut r = Registry::new(8);
            r.counter("done", &[]);
            r.histogram("lat", &[], &[100]);
            r
        };
        let mut whole = mk();
        whole.set_counter(MetricId(0), 3);
        whole.observe(MetricId(1), 50);
        whole.observe(MetricId(1), 150);
        whole.observe(MetricId(1), 70);
        whole.scrape(1_000);

        let mut a = mk();
        a.set_counter(MetricId(0), 1);
        a.observe(MetricId(1), 50);
        a.scrape(1_000);
        let mut b = mk();
        b.set_counter(MetricId(0), 2);
        b.observe(MetricId(1), 150);
        b.observe(MetricId(1), 70);
        b.scrape(1_000);
        a.merge_from(&b);

        let dump = |r: &Registry| {
            let mut w = ScrapeWriter::new(7, 1_000, r.defs());
            w.frames(r);
            w.finish()
        };
        assert_eq!(dump(&whole), dump(&a));
        assert_eq!(exposition(&whole), exposition(&a));
    }

    use crate::registry::MetricId;
}
