//! The metrics registry: typed counters, gauges, and fixed-bucket
//! histograms with static label sets, scraped on a sim-time cadence into
//! a ring buffer of frames.
//!
//! The registry is the declarative half of the telemetry bus. Components
//! register their metric families once at construction (registration
//! order is the canonical wire order for every exporter), write values
//! whenever they like, and a scraper snapshots the whole value vector at
//! a fixed sim-time cadence. Because everything is driven by simulation
//! time and values are either exact integers or deterministically
//! computed floats, the same seed produces byte-identical scrape streams
//! — the property the run reporter and the CI smoke legs pin.
//!
//! Histograms are Prometheus-shaped: cumulative `le` buckets plus `sum`
//! and `count`. Cumulative bucket counts are sum-mergeable, which is what
//! makes per-shard scrape frames from the conservative-parallel backend
//! merge deterministically into the same frames a single shard produces.

use std::collections::VecDeque;

/// What a metric measures and how it is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing event count.
    Counter,
    /// Point-in-time level (queue depth, utilization).
    Gauge,
    /// Fixed-bound cumulative-bucket histogram (`le` buckets, sum, count).
    Histogram,
}

impl MetricKind {
    /// Exposition-format type name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Handle to a registered metric. Cheap, `Copy`, and only valid for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub(crate) u32);

/// A registered metric: family name, static labels, and kind. For
/// histograms, `bounds` holds the upper bucket bounds (exclusive of the
/// implicit `+Inf` bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDef {
    /// Family name, `[a-z0-9_]` (exposition-compatible).
    pub name: String,
    /// Static label set, in registration order.
    pub labels: Vec<(String, String)>,
    /// Kind.
    pub kind: MetricKind,
    /// Histogram bucket upper bounds, ascending; empty for other kinds.
    pub bounds: Vec<u64>,
}

/// Current value storage for one metric.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Hist {
        /// Per-bucket (non-cumulative) counts, one per bound plus the
        /// overflow bucket.
        counts: Vec<u64>,
        sum: u64,
        count: u64,
    },
}

/// One metric's value as captured by a scrape.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram snapshot: per-bucket counts (non-cumulative, overflow
    /// last), value sum, and observation count — all cumulative since the
    /// start of the run, so differencing consecutive frames yields the
    /// per-window distribution.
    Hist {
        /// Per-bucket counts.
        counts: Vec<u64>,
        /// Sum of observed values.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One scrape: every registered metric's value at one sim time.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sim time of the scrape, nanoseconds.
    pub t_ns: u64,
    /// Values in registration order.
    pub values: Vec<FrameValue>,
}

/// The registry: metric definitions, current values, and the ring buffer
/// of scraped frames.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    defs: Vec<MetricDef>,
    slots: Vec<Slot>,
    frames: VecDeque<Frame>,
    capacity: usize,
    dropped: u64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && !name.as_bytes()[0].is_ascii_digit()
}

impl Registry {
    /// Creates an empty registry whose frame ring holds at most
    /// `capacity` scrapes (older frames are dropped, counted).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "frame ring needs capacity");
        Registry {
            defs: Vec::new(),
            slots: Vec::new(),
            frames: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    fn register(&mut self, def: MetricDef, slot: Slot) -> MetricId {
        assert!(
            valid_name(&def.name),
            "metric name {:?} must be [a-z_][a-z0-9_]*",
            def.name
        );
        for (k, _) in &def.labels {
            assert!(valid_name(k), "label name {k:?} must be [a-z_][a-z0-9_]*");
        }
        assert!(
            !self
                .defs
                .iter()
                .any(|d| d.name == def.name && d.labels == def.labels),
            "metric {:?} with identical labels registered twice",
            def.name
        );
        if let Some(first) = self.defs.iter().find(|d| d.name == def.name) {
            assert_eq!(
                first.kind, def.kind,
                "metric family {:?} registered with two kinds",
                def.name
            );
        }
        assert!(
            self.frames.is_empty(),
            "register every metric before the first scrape"
        );
        let id = MetricId(self.defs.len() as u32);
        self.defs.push(def);
        self.slots.push(slot);
        id
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(
            MetricDef {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                kind: MetricKind::Counter,
                bounds: Vec::new(),
            },
            Slot::Counter(0),
        )
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(
            MetricDef {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                kind: MetricKind::Gauge,
                bounds: Vec::new(),
            },
            Slot::Gauge(0.0),
        )
    }

    /// Registers a histogram with the given ascending upper bucket bounds
    /// (an overflow bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> MetricId {
        assert!(!bounds.is_empty(), "histogram needs bucket bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        self.register(
            MetricDef {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                kind: MetricKind::Histogram,
                bounds: bounds.to_vec(),
            },
            Slot::Hist {
                counts: vec![0; bounds.len() + 1],
                sum: 0,
                count: 0,
            },
        )
    }

    /// Sets a counter's value (counters are usually mirrored from an
    /// existing accumulator at scrape time, hence `set` rather than
    /// `inc`). A value below the current one panics: counters are
    /// monotone by contract and a regression means the mirror is wrong.
    pub fn set_counter(&mut self, id: MetricId, value: u64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Counter(v) => {
                assert!(value >= *v, "counter {} went backwards", id.0);
                *v = value;
            }
            _ => panic!("metric {} is not a counter", id.0),
        }
    }

    /// Sets a gauge's value.
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        match &mut self.slots[id.0 as usize] {
            Slot::Gauge(v) => *v = value,
            _ => panic!("metric {} is not a gauge", id.0),
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        let bounds = &self.defs[id.0 as usize].bounds;
        match &mut self.slots[id.0 as usize] {
            Slot::Hist { counts, sum, count } => {
                let idx = bounds.partition_point(|&b| value > b);
                counts[idx] += 1;
                *sum = sum.saturating_add(value);
                *count += 1;
            }
            _ => panic!("metric {} is not a histogram", id.0),
        }
    }

    /// Snapshots every metric's current value as one frame at sim time
    /// `t_ns`. Frames beyond the ring capacity drop the oldest.
    pub fn scrape(&mut self, t_ns: u64) {
        if let Some(last) = self.frames.back() {
            assert!(t_ns > last.t_ns, "scrapes must advance in sim time");
        }
        let values = self
            .slots
            .iter()
            .map(|s| match s {
                Slot::Counter(v) => FrameValue::Counter(*v),
                Slot::Gauge(v) => FrameValue::Gauge(*v),
                Slot::Hist { counts, sum, count } => FrameValue::Hist {
                    counts: counts.clone(),
                    sum: *sum,
                    count: *count,
                },
            })
            .collect();
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
            self.dropped += 1;
        }
        self.frames.push_back(Frame { t_ns, values });
    }

    /// Registered metric definitions, in registration order.
    pub fn defs(&self) -> &[MetricDef] {
        &self.defs
    }

    /// Scraped frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &Frame> {
        self.frames.iter()
    }

    /// Number of retained frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Frames dropped by the ring bound.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped
    }

    /// A metric's current value (as it would be scraped).
    pub fn current(&self, id: MetricId) -> FrameValue {
        match &self.slots[id.0 as usize] {
            Slot::Counter(v) => FrameValue::Counter(*v),
            Slot::Gauge(v) => FrameValue::Gauge(*v),
            Slot::Hist { counts, sum, count } => FrameValue::Hist {
                counts: counts.clone(),
                sum: *sum,
                count: *count,
            },
        }
    }

    /// Folds another registry (one shard's) into this one. Definitions
    /// must match exactly and the two sides must have scraped at the same
    /// sim times; counters and histogram buckets sum, gauges sum (each
    /// shard reports only the servers it owns, zeros elsewhere, so the
    /// sum of per-shard gauges equals the cluster-wide value).
    ///
    /// # Panics
    ///
    /// Panics on mismatched definitions or frame timestamps.
    pub fn merge_from(&mut self, other: &Registry) {
        assert_eq!(
            self.defs, other.defs,
            "cannot merge registries with different metric sets"
        );
        assert_eq!(
            self.frames.len(),
            other.frames.len(),
            "cannot merge registries with different frame counts"
        );
        for (mine, theirs) in self.frames.iter_mut().zip(other.frames.iter()) {
            assert_eq!(mine.t_ns, theirs.t_ns, "scrape times diverged");
            for (a, b) in mine.values.iter_mut().zip(&theirs.values) {
                match (a, b) {
                    (FrameValue::Counter(x), FrameValue::Counter(y)) => *x += y,
                    (FrameValue::Gauge(x), FrameValue::Gauge(y)) => *x += y,
                    (
                        FrameValue::Hist { counts, sum, count },
                        FrameValue::Hist {
                            counts: oc,
                            sum: os,
                            count: on,
                        },
                    ) => {
                        for (c, o) in counts.iter_mut().zip(oc) {
                            *c += o;
                        }
                        *sum = sum.saturating_add(*os);
                        *count += on;
                    }
                    _ => unreachable!("defs matched but kinds diverged"),
                }
            }
        }
        // Merge current values the same way so post-merge scrapes and
        // exposition reflect the whole cluster.
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            match (a, b) {
                (Slot::Counter(x), Slot::Counter(y)) => *x += y,
                (Slot::Gauge(x), Slot::Gauge(y)) => *x += y,
                (
                    Slot::Hist { counts, sum, count },
                    Slot::Hist {
                        counts: oc,
                        sum: os,
                        count: on,
                    },
                ) => {
                    for (c, o) in counts.iter_mut().zip(oc) {
                        *c += o;
                    }
                    *sum = sum.saturating_add(*os);
                    *count += on;
                }
                _ => unreachable!("defs matched but kinds diverged"),
            }
        }
        self.dropped += other.dropped;
    }
}

/// Default latency-histogram bucket bounds: powers of two from 0.25 ms to
/// 32 s, nanoseconds. Coarse enough to keep frames small, fine enough for
/// the reporter's interpolated percentile bands.
pub fn latency_bounds_ns() -> Vec<u64> {
    (0..18).map(|i| 250_000u64 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_scrape_in_order() {
        let mut r = Registry::new(8);
        let c = r.counter("reqs_total", &[]);
        let g = r.gauge("queue_len", &[("server", "0")]);
        let h = r.histogram("lat_ns", &[], &[10, 100]);
        r.set_counter(c, 5);
        r.set_gauge(g, 2.5);
        r.observe(h, 7);
        r.observe(h, 50);
        r.observe(h, 1_000);
        r.scrape(1_000);
        r.set_counter(c, 9);
        r.scrape(2_000);
        let frames: Vec<&Frame> = r.frames().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].t_ns, 1_000);
        assert_eq!(frames[0].values[0], FrameValue::Counter(5));
        assert_eq!(frames[0].values[1], FrameValue::Gauge(2.5));
        assert_eq!(
            frames[0].values[2],
            FrameValue::Hist {
                counts: vec![1, 1, 1],
                sum: 1_057,
                count: 3
            }
        );
        assert_eq!(frames[1].values[0], FrameValue::Counter(9));
    }

    #[test]
    fn bucket_bounds_are_inclusive_upper() {
        let mut r = Registry::new(2);
        let h = r.histogram("h", &[], &[10, 100]);
        r.observe(h, 10); // lands in the `le=10` bucket
        r.observe(h, 11); // lands in the `le=100` bucket
        r.observe(h, 101); // overflow
        match r.current(h) {
            FrameValue::Hist { counts, .. } => assert_eq!(counts, vec![1, 1, 1]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut r = Registry::new(2);
        let c = r.counter("c", &[]);
        for t in 1..=4u64 {
            r.set_counter(c, t);
            r.scrape(t * 100);
        }
        assert_eq!(r.frame_count(), 2);
        assert_eq!(r.dropped_frames(), 2);
        let ts: Vec<u64> = r.frames().map(|f| f.t_ns).collect();
        assert_eq!(ts, vec![300, 400]);
    }

    #[test]
    fn merge_sums_counters_gauges_and_buckets() {
        let build = |c1: u64, g1: f64, obs: &[u64]| {
            let mut r = Registry::new(8);
            let c = r.counter("c", &[]);
            let g = r.gauge("g", &[]);
            let h = r.histogram("h", &[], &[10]);
            r.set_counter(c, c1);
            r.set_gauge(g, g1);
            for &o in obs {
                r.observe(h, o);
            }
            r.scrape(100);
            r
        };
        let mut a = build(3, 1.0, &[5]);
        let b = build(4, 2.0, &[50]);
        a.merge_from(&b);
        let f = a.frames().next().unwrap();
        assert_eq!(f.values[0], FrameValue::Counter(7));
        assert_eq!(f.values[1], FrameValue::Gauge(3.0));
        assert_eq!(
            f.values[2],
            FrameValue::Hist {
                counts: vec![1, 1],
                sum: 55,
                count: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn counter_regression_panics() {
        let mut r = Registry::new(2);
        let c = r.counter("c", &[]);
        r.set_counter(c, 5);
        r.set_counter(c, 4);
    }

    #[test]
    #[should_panic(expected = "must be [a-z_]")]
    fn bad_name_panics() {
        let mut r = Registry::new(2);
        r.counter("Bad-Name", &[]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = Registry::new(2);
        r.counter("c", &[("s", "0")]);
        r.counter("c", &[("s", "0")]);
    }

    #[test]
    fn latency_bounds_are_ascending() {
        let b = latency_bounds_ns();
        assert_eq!(b[0], 250_000);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.len(), 18);
    }
}
