//! The run reporter: turns a parsed scrape document (plus an optional
//! span dump) into one self-contained HTML page — latency percentile
//! bands, goodput, queue-depth timelines, fault/alert annotations, and
//! the SLO / counter / engine-cost tables.
//!
//! Rendering is a pure function of its inputs: charts are inline SVG with
//! fixed-precision coordinates, tables iterate wire-ordered data, and no
//! wall-clock or environment leaks in — so the page is byte-identical for
//! a given scrape document, which is what the two-run determinism test
//! and the CI `obs` leg pin.

use crate::export::{AlertNote, ScrapeDoc};
use crate::registry::{FrameValue, MetricKind};
use actop_trace::SpanEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const CHART_W: f64 = 860.0;
const CHART_H: f64 = 220.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_B: f64 = 26.0;
const MARGIN_T: f64 = 10.0;

/// Fixed-precision coordinate/value formatting — two decimals everywhere
/// keeps the SVG compact and the output byte-stable.
fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Linear mapping from data space to SVG pixel space.
struct Scale {
    t0: f64,
    t1: f64,
    v0: f64,
    v1: f64,
}

impl Scale {
    fn x(&self, t: f64) -> f64 {
        if self.t1 <= self.t0 {
            return MARGIN_L;
        }
        MARGIN_L + (t - self.t0) / (self.t1 - self.t0) * (CHART_W - MARGIN_L - 10.0)
    }

    fn y(&self, v: f64) -> f64 {
        if self.v1 <= self.v0 {
            return CHART_H - MARGIN_B;
        }
        let frac = (v - self.v0) / (self.v1 - self.v0);
        MARGIN_T + (1.0 - frac) * (CHART_H - MARGIN_T - MARGIN_B)
    }
}

/// One series to draw: (t_seconds, value) points.
struct Series<'a> {
    name: String,
    color: &'a str,
    points: Vec<(f64, f64)>,
}

/// A shaded time-range annotation.
struct Band {
    label: String,
    start_s: f64,
    end_s: f64,
    color: &'static str,
}

fn polyline(out: &mut String, scale: &Scale, pts: &[(f64, f64)], color: &str, width: f64) {
    if pts.is_empty() {
        return;
    }
    let _ = write!(
        out,
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"{width}\" points=\""
    );
    for (i, (t, v)) in pts.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{},{}", fmt2(scale.x(*t)), fmt2(scale.y(*v)));
    }
    out.push_str("\"/>");
}

/// Renders one chart: axes with min/max tick labels, annotation bands,
/// then the series with a small legend.
fn chart(title: &str, unit: &str, series: &[Series], bands: &[Band]) -> String {
    let mut out = String::new();
    let _ = write!(out, "<h3>{}</h3>", esc(title));
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        out.push_str("<p class=\"empty\">no data</p>");
        return out;
    }
    let t0 = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let t1 = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let vmax = all.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let scale = Scale {
        t0,
        t1,
        v0: 0.0,
        v1: if vmax > 0.0 { vmax * 1.05 } else { 1.0 },
    };
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"{CHART_W}\" height=\"{CHART_H}\" role=\"img\">"
    );
    // Annotation bands first, under the data.
    for b in bands {
        let x0 = scale.x(b.start_s.max(t0));
        let x1 = scale.x(b.end_s.min(t1));
        if x1 <= x0 {
            continue;
        }
        let _ = write!(
            out,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\" opacity=\"0.18\"><title>{}</title></rect>",
            fmt2(x0),
            fmt2(MARGIN_T),
            fmt2(x1 - x0),
            fmt2(CHART_H - MARGIN_T - MARGIN_B),
            b.color,
            esc(&b.label)
        );
    }
    // Axes.
    let _ = write!(
        out,
        "<line x1=\"{l}\" y1=\"{t}\" x2=\"{l}\" y2=\"{b}\" stroke=\"#999\"/><line x1=\"{l}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"#999\"/>",
        l = MARGIN_L,
        t = MARGIN_T,
        b = CHART_H - MARGIN_B,
        r = CHART_W - 10.0
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"{}\" class=\"tick\">{} {}</text><text x=\"{}\" y=\"{}\" class=\"tick\">0</text>",
        4.0,
        MARGIN_T + 10.0,
        fmt2(scale.v1),
        esc(unit),
        MARGIN_L - 14.0,
        CHART_H - MARGIN_B
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"{}\" class=\"tick\">{} s</text><text x=\"{}\" y=\"{}\" class=\"tick\">{} s</text>",
        MARGIN_L,
        CHART_H - 8.0,
        fmt2(t0),
        CHART_W - 70.0,
        CHART_H - 8.0,
        fmt2(t1)
    );
    for s in series {
        polyline(&mut out, &scale, &s.points, s.color, 1.5);
    }
    out.push_str("</svg>");
    // Legend.
    out.push_str("<p class=\"legend\">");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push_str(" · ");
        }
        let _ = write!(
            out,
            "<span style=\"color:{}\">■</span> {}",
            s.color,
            esc(&s.name)
        );
    }
    out.push_str("</p>");
    out
}

fn table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    out.push_str("<table><tr>");
    for h in headers {
        let _ = write!(out, "<th>{}</th>", esc(h));
    }
    out.push_str("</tr>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            let _ = write!(out, "<td>{}</td>", esc(cell));
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
}

/// Interpolated quantile from per-bucket (non-cumulative) counts over
/// `bounds` (ascending upper bounds; overflow bucket last). Linear within
/// a bucket; the overflow bucket is clamped to twice the last bound.
pub fn bucket_quantile(bounds: &[u64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = q * total as f64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let lo = if i == 0 { 0 } else { bounds[i - 1] } as f64;
        let hi = if i < bounds.len() {
            bounds[i] as f64
        } else {
            bounds.last().copied().unwrap_or(0) as f64 * 2.0
        };
        if (cum + c) as f64 >= target {
            let within = (target - cum as f64) / c as f64;
            return lo + (hi - lo) * within.clamp(0.0, 1.0);
        }
        cum += c;
    }
    bounds.last().copied().unwrap_or(0) as f64 * 2.0
}

/// Pairs alert open/close transitions into shaded bands, per SLO name.
/// An unclosed alert extends to `end_s`.
fn alert_bands(alerts: &[AlertNote], end_s: f64) -> Vec<Band> {
    let mut open: BTreeMap<&str, f64> = BTreeMap::new();
    let mut bands = Vec::new();
    for a in alerts {
        let t = a.t_ns as f64 / 1e9;
        if a.open {
            open.insert(&a.slo, t);
        } else if let Some(start) = open.remove(a.slo.as_str()) {
            bands.push(Band {
                label: format!("alert {}", a.slo),
                start_s: start,
                end_s: t,
                color: "#e69500",
            });
        }
    }
    for (slo, start) in open {
        bands.push(Band {
            label: format!("alert {slo} (open)"),
            start_s: start,
            end_s,
            color: "#e69500",
        });
    }
    bands
}

/// Per-window histogram deltas for metric `idx`: `(end_t_s, counts)`
/// including the implicit zero frame at t=0.
fn hist_windows(doc: &ScrapeDoc, idx: usize) -> Vec<(f64, Vec<u64>)> {
    let mut prev: Option<&Vec<u64>> = None;
    let mut out = Vec::new();
    for f in &doc.frames {
        if let FrameValue::Hist { counts, .. } = &f.values[idx] {
            let delta = match prev {
                Some(p) => counts.iter().zip(p).map(|(c, p)| c - p).collect(),
                None => counts.clone(),
            };
            out.push((f.t_ns as f64 / 1e9, delta));
            prev = Some(counts);
        }
    }
    out
}

/// Per-window counter deltas for metric `idx`: `(end_t_s, delta)`.
fn counter_windows(doc: &ScrapeDoc, idx: usize) -> Vec<(f64, u64)> {
    let mut prev = 0u64;
    let mut out = Vec::new();
    for f in &doc.frames {
        if let FrameValue::Counter(v) = f.values[idx] {
            out.push((f.t_ns as f64 / 1e9, v - prev));
            prev = v;
        }
    }
    out
}

fn def_label(doc: &ScrapeDoc, idx: usize) -> String {
    let d = &doc.defs[idx];
    if d.labels.is_empty() {
        d.name.clone()
    } else {
        let labels: Vec<String> = d.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", d.name, labels.join(","))
    }
}

const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// Renders the full report page. `spans`, when given, contributes a
/// span-kind census table (the trace itself stays in its own viewers).
pub fn render_html(doc: &ScrapeDoc, spans: Option<&[SpanEvent]>) -> String {
    let end_s = doc.frames.last().map_or(0.0, |f| f.t_ns as f64 / 1e9);
    let mut bands: Vec<Band> = doc
        .faults
        .iter()
        .map(|f| Band {
            label: match f.server {
                Some(s) => format!("{} s{}", f.name, s),
                None => f.name.clone(),
            },
            start_s: f.start_ns as f64 / 1e9,
            end_s: f.end_ns.map_or(end_s, |e| e as f64 / 1e9),
            color: "#d62728",
        })
        .collect();
    bands.extend(alert_bands(&doc.alerts, end_s));

    let mut body = String::new();
    let _ = write!(
        body,
        "<h1>actop run report</h1><p>seed {} · scrape interval {} ms · {} frames · {} s horizon</p>",
        doc.seed,
        doc.interval_ns / 1_000_000,
        doc.frames.len(),
        fmt2(end_s)
    );

    // Latency percentile bands: the first histogram metric.
    if let Some(idx) = doc
        .defs
        .iter()
        .position(|d| d.kind == MetricKind::Histogram)
    {
        let bounds = &doc.defs[idx].bounds;
        let windows = hist_windows(doc, idx);
        let mut series = vec![
            Series {
                name: "p50".into(),
                color: PALETTE[0],
                points: Vec::new(),
            },
            Series {
                name: "p95".into(),
                color: PALETTE[4],
                points: Vec::new(),
            },
            Series {
                name: "p99".into(),
                color: PALETTE[1],
                points: Vec::new(),
            },
        ];
        for (t, counts) in &windows {
            for (s, q) in series.iter_mut().zip([0.50, 0.95, 0.99]) {
                s.points
                    .push((*t, bucket_quantile(bounds, counts, q) / 1e6));
            }
        }
        body.push_str(&chart(
            &format!("latency percentiles — {}", def_label(doc, idx)),
            "ms",
            &series,
            &bands,
        ));
    }

    // Goodput: the completion counter differenced per window.
    let goodput_idx = doc
        .defs
        .iter()
        .position(|d| d.kind == MetricKind::Counter && d.name.contains("completed"))
        .or_else(|| doc.defs.iter().position(|d| d.kind == MetricKind::Counter));
    if let Some(idx) = goodput_idx {
        let interval_s = doc.interval_ns as f64 / 1e9;
        let points: Vec<(f64, f64)> = counter_windows(doc, idx)
            .iter()
            .map(|(t, d)| (*t, *d as f64 / interval_s))
            .collect();
        body.push_str(&chart(
            &format!("goodput — {}", def_label(doc, idx)),
            "req/s",
            &[Series {
                name: "completions/s".into(),
                color: PALETTE[2],
                points,
            }],
            &bands,
        ));
    }

    // Queue depth: every gauge in the queue_len family (or the first
    // gauge family), one series per label set, palette-cycled.
    let gauge_family = doc
        .defs
        .iter()
        .find(|d| d.kind == MetricKind::Gauge && d.name == "queue_len")
        .or_else(|| doc.defs.iter().find(|d| d.kind == MetricKind::Gauge))
        .map(|d| d.name.clone());
    if let Some(fam) = gauge_family {
        let idxs = doc.family(&fam);
        let series: Vec<Series> = idxs
            .iter()
            .enumerate()
            .map(|(i, &idx)| Series {
                name: def_label(doc, idx),
                color: PALETTE[i % PALETTE.len()],
                points: doc
                    .frames
                    .iter()
                    .filter_map(|f| match f.values[idx] {
                        FrameValue::Gauge(v) => Some((f.t_ns as f64 / 1e9, v)),
                        _ => None,
                    })
                    .collect(),
            })
            .collect();
        body.push_str(&chart(&fam, "", &series, &bands));
    }

    // SLO outcomes.
    if !doc.slos.is_empty() {
        body.push_str("<h3>SLOs</h3>");
        let bin_s = doc.interval_ns as f64 / 1e9;
        let rows: Vec<Vec<String>> = doc
            .slos
            .iter()
            .map(|s| {
                let violated: u64 = s.windows.iter().map(|(a, b)| b - a).sum();
                vec![
                    s.name.clone(),
                    s.windows.len().to_string(),
                    fmt2(violated as f64 * bin_s),
                    s.opened.to_string(),
                    s.closed.to_string(),
                ]
            })
            .collect();
        table(
            &mut body,
            &[
                "slo",
                "violation windows",
                "violated time (s)",
                "alerts opened",
                "alerts closed",
            ],
            &rows,
        );
    }

    // Fault timeline table.
    if !doc.faults.is_empty() {
        body.push_str("<h3>Faults</h3>");
        let rows: Vec<Vec<String>> = doc
            .faults
            .iter()
            .map(|f| {
                vec![
                    f.name.clone(),
                    f.server.map_or("-".into(), |s| s.to_string()),
                    fmt2(f.start_ns as f64 / 1e9),
                    f.end_ns.map_or("never".into(), |e| fmt2(e as f64 / 1e9)),
                ]
            })
            .collect();
        table(
            &mut body,
            &["fault", "server", "start (s)", "end (s)"],
            &rows,
        );
    }

    // Final counter values.
    let counter_rows: Vec<Vec<String>> = doc
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == MetricKind::Counter)
        .filter_map(|(i, _)| {
            doc.frames.last().map(|f| {
                let v = match f.values[i] {
                    FrameValue::Counter(v) => v,
                    _ => 0,
                };
                vec![def_label(doc, i), v.to_string()]
            })
        })
        .collect();
    if !counter_rows.is_empty() {
        body.push_str("<h3>Counters (final)</h3>");
        table(&mut body, &["counter", "value"], &counter_rows);
    }

    // Run summary / engine self-metrics (includes cost-attribution op
    // counts when the run had them enabled).
    for (title, pairs) in [("Run summary", &doc.summary), ("Engine", &doc.engine)] {
        if !pairs.is_empty() {
            let _ = write!(body, "<h3>{title}</h3>");
            let rows: Vec<Vec<String>> = pairs
                .iter()
                .map(|(k, v)| {
                    let text = if *v == v.trunc() && v.abs() < 1e15 {
                        format!("{}", *v as i64)
                    } else {
                        fmt2(*v)
                    };
                    vec![k.clone(), text]
                })
                .collect();
            table(&mut body, &["metric", "value"], &rows);
        }
    }

    // Span census from an optional trace export.
    if let Some(spans) = spans {
        body.push_str("<h3>Trace span census</h3>");
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for s in spans {
            *counts.entry(s.kind.name()).or_default() += 1;
        }
        let rows: Vec<Vec<String>> = counts
            .iter()
            .map(|(k, v)| vec![(*k).to_string(), v.to_string()])
            .collect();
        table(&mut body, &["span kind", "count"], &rows);
        let _ = write!(body, "<p>{} spans total</p>", spans.len());
    }

    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\"><title>actop run report — seed {}</title><style>\
body{{font-family:system-ui,sans-serif;max-width:920px;margin:2em auto;color:#222}}\
table{{border-collapse:collapse;margin:0.5em 0}}\
th,td{{border:1px solid #ccc;padding:3px 10px;text-align:left;font-size:13px}}\
th{{background:#f2f2f2}}\
.tick{{font-size:11px;fill:#666}}\
.legend{{font-size:12px;color:#444}}\
.empty{{color:#888;font-style:italic}}\
</style></head><body>{}</body></html>\n",
        doc.seed, body
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{parse_scrape_jsonl, FaultNote, ScrapeWriter, SloNote};
    use crate::registry::Registry;

    fn sample_doc() -> ScrapeDoc {
        let mut r = Registry::new(16);
        let c = r.counter("requests_completed_total", &[]);
        let g0 = r.gauge("queue_len", &[("server", "0")]);
        let h = r.histogram("latency_e2e_ns", &[], &[1_000_000, 10_000_000, 100_000_000]);
        for i in 1..=5u64 {
            r.set_counter(c, i * 100);
            r.set_gauge(g0, i as f64);
            for _ in 0..10 {
                r.observe(h, i * 2_000_000);
            }
            r.scrape(i * 1_000_000_000);
        }
        let mut w = ScrapeWriter::new(42, 1_000_000_000, r.defs());
        w.frames(&r);
        w.alert(&AlertNote {
            slo: "lat".into(),
            open: true,
            t_ns: 1_000_000_000,
            bin: 1,
        });
        w.alert(&AlertNote {
            slo: "lat".into(),
            open: false,
            t_ns: 3_000_000_000,
            bin: 3,
        });
        w.fault(&FaultNote {
            name: "crash".into(),
            server: Some(2),
            start_ns: 2_000_000_000,
            end_ns: Some(4_000_000_000),
        });
        w.slo(&SloNote {
            name: "lat".into(),
            windows: vec![(1, 3)],
            opened: 1,
            closed: 1,
        });
        w.summary(&[("completed", 500.0)]);
        w.engine(&[("events", 12345.0), ("cost_heap_ops", 99.0)]);
        parse_scrape_jsonl(&w.finish()).unwrap()
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let bounds = [10, 20, 40];
        // 10 obs in (0,10], 10 in (10,20], none beyond.
        let counts = [10, 10, 0, 0];
        assert_eq!(bucket_quantile(&bounds, &counts, 0.5), 10.0);
        assert_eq!(bucket_quantile(&bounds, &counts, 0.25), 5.0);
        assert_eq!(bucket_quantile(&bounds, &counts, 0.75), 15.0);
        // Overflow clamps to twice the last bound.
        assert_eq!(bucket_quantile(&bounds, &[0, 0, 0, 4], 1.0), 80.0);
        assert_eq!(bucket_quantile(&bounds, &[0, 0, 0, 0], 0.99), 0.0);
    }

    #[test]
    fn report_renders_all_sections() {
        let doc = sample_doc();
        let html = render_html(&doc, None);
        assert!(html.contains("<h1>actop run report</h1>"));
        assert!(html.contains("latency percentiles"));
        assert!(html.contains("goodput"));
        assert!(html.contains("queue_len"));
        assert!(html.contains("SLOs"));
        assert!(html.contains("Faults"));
        assert!(html.contains("crash s2"));
        assert!(html.contains("alert lat"));
        assert!(html.contains("cost_heap_ops"));
        assert!(html.contains("</html>"));
    }

    #[test]
    fn report_is_deterministic() {
        let doc = sample_doc();
        assert_eq!(render_html(&doc, None), render_html(&doc, None));
    }

    #[test]
    fn report_survives_empty_document() {
        let r = Registry::new(2);
        let w = ScrapeWriter::new(1, 1_000, r.defs());
        let doc = parse_scrape_jsonl(&w.finish()).unwrap();
        let html = render_html(&doc, None);
        assert!(html.contains("0 frames"));
    }

    #[test]
    fn span_census_counts_kinds() {
        use actop_trace::{HopKind, NO_SERVER, NO_STAGE};
        let doc = sample_doc();
        let spans = vec![
            SpanEvent {
                request: 1,
                kind: HopKind::GatewayAdmit,
                server: 0,
                stage: NO_STAGE,
                aux: 0,
                t_start: actop_sim::Nanos(0),
                t_end: actop_sim::Nanos(0),
            },
            SpanEvent {
                request: 1,
                kind: HopKind::GatewayAdmit,
                server: NO_SERVER,
                stage: NO_STAGE,
                aux: 0,
                t_start: actop_sim::Nanos(5),
                t_end: actop_sim::Nanos(5),
            },
        ];
        let html = render_html(&doc, Some(&spans));
        assert!(html.contains("Trace span census"));
        assert!(html.contains("2 spans total"));
    }
}
