//! Unified telemetry for the ActOp repro: a metrics registry, an SLO
//! engine with burn-rate alerting, scrape exporters, and the run
//! reporter.
//!
//! The paper's runtime is built on the premise that the system measures
//! itself continuously and acts on those measurements. Before this crate
//! the repro measured plenty but scattered the machinery: SLO-violation
//! windows were bench-local arithmetic, detector-accuracy sampling lived
//! in the chaos bench, engine self-metrics in `EngineReport`. This crate
//! makes telemetry a subsystem:
//!
//! * [`registry`] — typed counters/gauges/histograms with static label
//!   sets, registered once, scraped on a sim-time cadence into a ring of
//!   frames. Histograms are Prometheus-shaped (cumulative `le` buckets)
//!   so per-shard frames sum-merge into exactly the frames a single
//!   shard would have produced.
//! * [`slo`] — declarative SLO specs evaluated online over closed bins,
//!   with multi-window burn-rate alerting and the merged
//!   violation-window view the chaos bench reports.
//! * [`export`] — the deterministic scrape JSONL (writer + parser) and
//!   the hand-rolled Prometheus text exposition with its validator.
//! * [`report`] — one self-contained HTML page per run: latency
//!   percentile bands, goodput, queue-depth timelines, fault/alert
//!   annotations, SLO and cost tables. Byte-identical per seed.
//!
//! Everything is sim-time driven and wall-clock free, so all artifacts
//! are byte-identical for a given seed — the determinism contract the
//! rest of the workspace already lives by.

pub mod export;
pub mod registry;
pub mod report;
pub mod slo;

pub use export::{
    exposition, parse_scrape_jsonl, validate_exposition, AlertNote, ExpoStats, FaultNote,
    ScrapeDoc, ScrapeWriter, SloNote,
};
pub use registry::{
    latency_bounds_ns, Frame, FrameValue, MetricDef, MetricId, MetricKind, Registry,
};
pub use report::{bucket_quantile, render_html};
pub use slo::{
    merge_windows, AlertEpisode, AlertTransition, BinObs, BurnRate, SloEngine, SloKind, SloSpec,
    Window,
};
