//! The SLO engine: declarative service-level objectives evaluated online
//! over fixed sim-time bins, with multi-window burn-rate alerting.
//!
//! Each [`SloSpec`] names an objective over one binned observation stream
//! (latency bins, goodput bins, detector false-suspicion bins). The
//! engine consumes closed bins one at a time — `push` is called once per
//! bin per spec, in time order — and classifies each bin as violated or
//! not. Two layers sit on top of that classification:
//!
//! * **Violation windows** — maximal runs of consecutive violated bins,
//!   the exact quantity `bench_chaos` used to report (a window is an
//!   outage interval, its length the time-to-recover).
//! * **Burn-rate alerts** — the multi-window pattern from Google's SRE
//!   workbook: an alert *opens* when the violated-bin fraction over both
//!   a short window (fast signal) and a long window (sustained signal)
//!   reaches a threshold, and *closes* when the short window clears.
//!   Evaluated purely in sim time, so alerting is deterministic.
//!
//! Everything here is plain arithmetic over `(count, sum)` bin pairs; no
//! wall-clock, no RNG. Same bins in ⇒ same alerts and windows out.

/// One closed observation bin handed to the engine: how many events the
/// bin saw and their value sum (units depend on the stream — latency
/// bins carry nanoseconds, rate bins just use `count`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinObs {
    /// Events observed in the bin.
    pub count: f64,
    /// Sum of observed values (stream-specific units).
    pub sum: f64,
}

impl BinObs {
    /// Mean value per event, or 0 for an empty bin.
    pub fn mean(&self) -> f64 {
        if self.count > 0.0 {
            self.sum / self.count
        } else {
            0.0
        }
    }
}

/// What an SLO demands of each bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Mean latency in the bin must stay below this many milliseconds;
    /// empty bins are compliant (matches the historical `bench_chaos`
    /// rule: `count > 0 && mean_ms > target` ⇒ violated). Bin sums are
    /// nanoseconds.
    MeanLatencyBelowMs(f64),
    /// The bin must complete at least this many events per second.
    GoodputAtLeastPerS(f64),
    /// The bin must see fewer than this many events per second (for
    /// "bad event" streams such as detector false suspicions).
    RateBelowPerS(f64),
}

impl SloKind {
    /// Whether one closed bin of width `bin_s` seconds violates the
    /// objective.
    pub fn violated(&self, obs: &BinObs, bin_s: f64) -> bool {
        match *self {
            SloKind::MeanLatencyBelowMs(target_ms) => {
                obs.count > 0.0 && obs.mean() / 1e6 > target_ms
            }
            SloKind::GoodputAtLeastPerS(floor) => obs.count / bin_s < floor,
            SloKind::RateBelowPerS(ceiling) => obs.count / bin_s >= ceiling,
        }
    }
}

/// Burn-rate alert policy: fractions of violated bins over two sliding
/// windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRate {
    /// Long (sustained) window length, bins.
    pub long_bins: usize,
    /// Short (fast) window length, bins.
    pub short_bins: usize,
    /// Violated-bin fraction at or above which a window is burning.
    pub threshold: f64,
}

impl Default for BurnRate {
    /// 5-bin short window and 60-bin long window at a 50% violation
    /// fraction — with 1 s bins, the classic "5 m fast / 1 h sustained"
    /// shape scaled to simulation horizons.
    fn default() -> Self {
        BurnRate {
            long_bins: 60,
            short_bins: 5,
            threshold: 0.5,
        }
    }
}

/// One declarative SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Name, used in exports and alert trace events.
    pub name: String,
    /// The per-bin objective.
    pub kind: SloKind,
    /// Alerting policy.
    pub burn: BurnRate,
}

impl SloSpec {
    /// A spec with the default burn-rate policy.
    pub fn new(name: &str, kind: SloKind) -> Self {
        SloSpec {
            name: name.to_string(),
            kind,
            burn: BurnRate::default(),
        }
    }
}

/// A maximal run of consecutive violated bins, `[start_bin, end_bin)`,
/// indices relative to whatever origin the caller's bins use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First violated bin.
    pub start_bin: usize,
    /// One past the last violated bin.
    pub end_bin: usize,
}

impl Window {
    /// Window length in bins.
    pub fn len(&self) -> usize {
        self.end_bin - self.start_bin
    }

    /// Whether the window is empty (never produced by the engine).
    pub fn is_empty(&self) -> bool {
        self.end_bin <= self.start_bin
    }
}

/// What `push` observed for one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// No alert state change.
    None,
    /// The alert opened at this bin.
    Opened,
    /// The alert closed at this bin.
    Closed,
}

/// Online state for one spec.
#[derive(Debug, Clone)]
struct SpecState {
    /// Per-bin violation verdicts, index = bin number since start.
    violated: Vec<bool>,
    /// Violated count inside the trailing short window.
    short_hits: usize,
    /// Violated count inside the trailing long window.
    long_hits: usize,
    /// Whether the alert is currently open.
    open: bool,
    /// Bin at which the open alert started (valid when `open`).
    open_bin: usize,
    /// Alerts opened so far.
    opened: u64,
    /// Alerts closed so far.
    closed: u64,
}

/// An alert episode: `[open_bin, close_bin)`; `close_bin == usize::MAX`
/// while still open at finalize time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertEpisode {
    /// Bin at which the alert opened.
    pub open_bin: usize,
    /// Bin at which it closed, or `usize::MAX` if never.
    pub close_bin: usize,
}

/// The engine: a set of specs evaluated in lockstep over a shared bin
/// clock.
#[derive(Debug, Clone)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
    bin_s: f64,
    episodes: Vec<Vec<AlertEpisode>>,
}

impl SloEngine {
    /// Builds an engine over `specs` with `bin_ns`-wide bins.
    ///
    /// # Panics
    ///
    /// Panics if `bin_ns == 0` or any spec has a zero-length window or a
    /// short window longer than its long window.
    pub fn new(specs: Vec<SloSpec>, bin_ns: u64) -> Self {
        assert!(bin_ns > 0, "bin width must be positive");
        for s in &specs {
            assert!(
                s.burn.short_bins > 0 && s.burn.long_bins >= s.burn.short_bins,
                "spec {:?}: need 0 < short_bins <= long_bins",
                s.name
            );
            assert!(
                s.burn.threshold > 0.0 && s.burn.threshold <= 1.0,
                "spec {:?}: threshold must be in (0, 1]",
                s.name
            );
        }
        let states = specs
            .iter()
            .map(|_| SpecState {
                violated: Vec::new(),
                short_hits: 0,
                long_hits: 0,
                open: false,
                open_bin: 0,
                opened: 0,
                closed: 0,
            })
            .collect();
        let episodes = specs.iter().map(|_| Vec::new()).collect();
        SloEngine {
            specs,
            states,
            bin_s: bin_ns as f64 / 1e9,
            episodes,
        }
    }

    /// The specs, in registration order.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Number of bins pushed so far (same for every spec).
    pub fn bins_seen(&self) -> usize {
        self.states.first().map_or(0, |s| s.violated.len())
    }

    /// Feeds the next closed bin for spec `idx` and returns the alert
    /// transition it caused. Bins must be pushed in time order, one per
    /// spec per bin.
    pub fn push(&mut self, idx: usize, obs: BinObs) -> AlertTransition {
        let spec = &self.specs[idx];
        let violated = spec.kind.violated(&obs, self.bin_s);
        let burn = spec.burn;
        let st = &mut self.states[idx];
        let bin = st.violated.len();
        st.violated.push(violated);
        if violated {
            st.short_hits += 1;
            st.long_hits += 1;
        }
        // Expire bins sliding out of each window.
        if bin >= burn.short_bins && st.violated[bin - burn.short_bins] {
            st.short_hits -= 1;
        }
        if bin >= burn.long_bins && st.violated[bin - burn.long_bins] {
            st.long_hits -= 1;
        }
        let short_n = (bin + 1).min(burn.short_bins) as f64;
        let long_n = (bin + 1).min(burn.long_bins) as f64;
        let short_burn = st.short_hits as f64 / short_n >= burn.threshold;
        let long_burn = st.long_hits as f64 / long_n >= burn.threshold;
        if !st.open && short_burn && long_burn {
            st.open = true;
            st.open_bin = bin;
            st.opened += 1;
            self.episodes[idx].push(AlertEpisode {
                open_bin: bin,
                close_bin: usize::MAX,
            });
            AlertTransition::Opened
        } else if st.open && !short_burn {
            st.open = false;
            st.closed += 1;
            self.episodes[idx]
                .last_mut()
                .expect("open episode")
                .close_bin = bin;
            AlertTransition::Closed
        } else {
            AlertTransition::None
        }
    }

    /// Total alerts opened for spec `idx`.
    pub fn alerts_opened(&self, idx: usize) -> u64 {
        self.states[idx].opened
    }

    /// Total alerts closed for spec `idx`.
    pub fn alerts_closed(&self, idx: usize) -> u64 {
        self.states[idx].closed
    }

    /// Whether spec `idx`'s alert is currently open.
    pub fn is_open(&self, idx: usize) -> bool {
        self.states[idx].open
    }

    /// Alert episodes for spec `idx`, in open order.
    pub fn episodes(&self, idx: usize) -> &[AlertEpisode] {
        &self.episodes[idx]
    }

    /// Per-bin violation verdicts for spec `idx`.
    pub fn verdicts(&self, idx: usize) -> &[bool] {
        &self.states[idx].violated
    }

    /// All maximal violation windows for spec `idx`, bin indices relative
    /// to the engine's first bin.
    pub fn windows(&self, idx: usize) -> Vec<Window> {
        merge_windows(&self.states[idx].violated)
    }

    /// Violation windows clipped to `[first, last)` and rebased so bin
    /// `first` becomes 0 — the measurement-relative view `bench_chaos`
    /// reports (clip-then-rebase of merged windows equals filtering bins
    /// to the measurement range and merging those, because clipping a
    /// maximal run yields the maximal runs of the restricted sequence).
    pub fn windows_in(&self, idx: usize, first: usize, last: usize) -> Vec<Window> {
        self.windows(idx)
            .iter()
            .filter_map(|w| {
                let start = w.start_bin.max(first);
                let end = w.end_bin.min(last);
                if start < end {
                    Some(Window {
                        start_bin: start - first,
                        end_bin: end - first,
                    })
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Merges a per-bin violation sequence into maximal windows.
pub fn merge_windows(violated: &[bool]) -> Vec<Window> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, &v) in violated.iter().enumerate() {
        match (v, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                out.push(Window {
                    start_bin: s,
                    end_bin: i,
                });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(Window {
            start_bin: s,
            end_bin: violated.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat_bin(count: f64, mean_ms: f64) -> BinObs {
        BinObs {
            count,
            sum: count * mean_ms * 1e6,
        }
    }

    #[test]
    fn mean_latency_rule_matches_bench_chaos() {
        let kind = SloKind::MeanLatencyBelowMs(100.0);
        assert!(!kind.violated(&lat_bin(0.0, 0.0), 1.0), "empty bin is fine");
        assert!(
            !kind.violated(&lat_bin(5.0, 100.0), 1.0),
            "at target is fine"
        );
        assert!(kind.violated(&lat_bin(5.0, 100.01), 1.0));
    }

    #[test]
    fn goodput_and_rate_rules() {
        let good = SloKind::GoodputAtLeastPerS(100.0);
        assert!(good.violated(
            &BinObs {
                count: 99.0,
                sum: 0.0
            },
            1.0
        ));
        assert!(!good.violated(
            &BinObs {
                count: 100.0,
                sum: 0.0
            },
            1.0
        ));
        let rate = SloKind::RateBelowPerS(2.0);
        assert!(!rate.violated(
            &BinObs {
                count: 1.0,
                sum: 0.0
            },
            1.0
        ));
        assert!(rate.violated(
            &BinObs {
                count: 2.0,
                sum: 0.0
            },
            1.0
        ));
    }

    #[test]
    fn windows_merge_adjacent_violations() {
        assert_eq!(
            merge_windows(&[false, true, true, false, true]),
            vec![
                Window {
                    start_bin: 1,
                    end_bin: 3
                },
                Window {
                    start_bin: 4,
                    end_bin: 5
                }
            ]
        );
        assert_eq!(merge_windows(&[]), vec![]);
        assert_eq!(
            merge_windows(&[true]),
            vec![Window {
                start_bin: 0,
                end_bin: 1
            }]
        );
    }

    #[test]
    fn windows_in_clips_and_rebases() {
        // Violations at bins 1..3 and 4..7; measurement range [2, 6).
        let mut eng = SloEngine::new(
            vec![SloSpec::new("lat", SloKind::MeanLatencyBelowMs(100.0))],
            1_000_000_000,
        );
        for v in [false, true, true, false, true, true, true, false] {
            eng.push(0, lat_bin(1.0, if v { 200.0 } else { 10.0 }));
        }
        assert_eq!(
            eng.windows_in(0, 2, 6),
            vec![
                Window {
                    start_bin: 0,
                    end_bin: 1
                },
                Window {
                    start_bin: 2,
                    end_bin: 4
                }
            ]
        );
    }

    #[test]
    fn alert_opens_on_both_windows_and_closes_on_short() {
        let spec = SloSpec {
            name: "lat".into(),
            kind: SloKind::MeanLatencyBelowMs(100.0),
            burn: BurnRate {
                long_bins: 6,
                short_bins: 2,
                threshold: 0.5,
            },
        };
        let mut eng = SloEngine::new(vec![spec], 1_000_000_000);
        // Bin 0 violated: short 1/1 = 1.0, long 1/1 = 1.0 → opens at once.
        assert_eq!(eng.push(0, lat_bin(1.0, 200.0)), AlertTransition::Opened);
        assert!(eng.is_open(0));
        // One healthy bin: short 1/2 = 0.5 ≥ thr, still open.
        assert_eq!(eng.push(0, lat_bin(1.0, 10.0)), AlertTransition::None);
        // Second healthy bin: short 0/2 < thr → closes.
        assert_eq!(eng.push(0, lat_bin(1.0, 10.0)), AlertTransition::Closed);
        assert!(!eng.is_open(0));
        assert_eq!(eng.alerts_opened(0), 1);
        assert_eq!(eng.alerts_closed(0), 1);
        assert_eq!(
            eng.episodes(0),
            &[AlertEpisode {
                open_bin: 0,
                close_bin: 2
            }]
        );
    }

    #[test]
    fn long_window_gates_reopening() {
        // Long window must also be burning for an open; with a long run
        // of healthy bins behind it, a single violated bin can satisfy
        // the short window but not the long one.
        let spec = SloSpec {
            name: "lat".into(),
            kind: SloKind::MeanLatencyBelowMs(100.0),
            burn: BurnRate {
                long_bins: 10,
                short_bins: 1,
                threshold: 0.5,
            },
        };
        let mut eng = SloEngine::new(vec![spec], 1_000_000_000);
        for _ in 0..9 {
            assert_eq!(eng.push(0, lat_bin(1.0, 10.0)), AlertTransition::None);
        }
        // Bin 9 violated: short 1/1 burning, long 1/10 = 0.1 < 0.5 → no open.
        assert_eq!(eng.push(0, lat_bin(1.0, 200.0)), AlertTransition::None);
        assert_eq!(eng.alerts_opened(0), 0);
        // Sustained violations eventually satisfy the long window too.
        let mut opened = false;
        for _ in 0..10 {
            if eng.push(0, lat_bin(1.0, 200.0)) == AlertTransition::Opened {
                opened = true;
                break;
            }
        }
        assert!(opened, "sustained burn must open the alert");
    }

    #[test]
    fn open_episode_is_max_until_closed() {
        let spec = SloSpec {
            name: "lat".into(),
            kind: SloKind::MeanLatencyBelowMs(100.0),
            burn: BurnRate {
                long_bins: 2,
                short_bins: 1,
                threshold: 0.5,
            },
        };
        let mut eng = SloEngine::new(vec![spec], 1_000_000_000);
        eng.push(0, lat_bin(1.0, 200.0));
        eng.push(0, lat_bin(1.0, 200.0));
        assert_eq!(eng.alerts_opened(0), 1);
        assert_eq!(eng.alerts_closed(0), 0);
        assert_eq!(eng.episodes(0)[0].close_bin, usize::MAX);
    }
}
