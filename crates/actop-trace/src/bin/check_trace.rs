//! Validates a Chrome trace-event JSON file produced by the trace
//! exporter (CI runs this against a short instrumented bench).
//!
//! Usage: `check_trace <trace.json>`; exits nonzero if the file is
//! missing, malformed, empty, or has non-monotone timestamps on any
//! track.

use std::process::ExitCode;

use actop_trace::validate_chrome_trace;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_trace <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("check_trace: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&text) {
        Ok(stats) => {
            println!(
                "{path}: OK — {} events ({} spans, {} instants, {} counters) on {} tracks",
                stats.total_events,
                stats.complete_spans,
                stats.instants,
                stats.counters,
                stats.tracks
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("check_trace: {path}: INVALID — {err}");
            ExitCode::FAILURE
        }
    }
}
