//! The tracer: preallocated span buffer, deterministic head sampling, and
//! the per-server flight-recorder rings.

use actop_metrics::Timeline;
use actop_sim::{mix64, Nanos};

use crate::span::{HopKind, SpanEvent};

/// Configuration of a run's tracer.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Fraction of requests whose spans are kept, in `[0, 1]`. The
    /// decision is a pure hash of `(request id, seed)`, so the same seed
    /// samples the same requests on every run.
    pub sample_rate: f64,
    /// Sampling seed; benches tie it to the run seed.
    pub seed: u64,
    /// Preallocated span-buffer capacity; events past it are counted as
    /// dropped rather than grown into (keeps tracing overhead flat).
    pub span_capacity: usize,
    /// Flight-recorder ring size per server (the "last N events").
    pub ring_capacity: usize,
    /// Maximum number of flight dumps kept per run (each anomaly after
    /// the cap still counts, but its ring snapshot is not stored).
    pub max_flight_dumps: usize,
    /// Timeline sampling interval (queue depth / threads / utilization
    /// per server).
    pub timeline_bin: Nanos,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_rate: 1.0,
            seed: 0,
            span_capacity: 1 << 21,
            ring_capacity: 256,
            max_flight_dumps: 32,
            timeline_bin: Nanos::from_millis(100),
        }
    }
}

/// A snapshot of a server's flight-recorder ring, taken when an anomaly
/// fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What tripped the recorder ([`HopKind::Timeout`], [`HopKind::Shed`],
    /// or [`HopKind::ServerFail`]).
    pub trigger: HopKind,
    /// The request the trigger names (0 for server failures).
    pub request: u64,
    /// The server whose ring was snapshotted.
    pub server: u32,
    /// Sim time of the trigger.
    pub at: Nanos,
    /// The ring contents, oldest first.
    pub events: Vec<SpanEvent>,
}

/// Fixed-size overwrite ring of the most recent events on one server.
#[derive(Debug, Clone)]
struct EventRing {
    buf: Vec<SpanEvent>,
    /// Next write position once the ring is full.
    head: usize,
    capacity: usize,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Ring contents in insertion order (oldest first).
    fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// The per-run trace recorder. Construct with [`Tracer::disabled`] (the
/// default — every hook reduces to one branch) or [`Tracer::new`].
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    /// `mix64(request ^ seed_mix) < threshold` keeps the request;
    /// `u64::MAX` means keep everything.
    threshold: u64,
    seed_mix: u64,
    spans: Vec<SpanEvent>,
    dropped: u64,
    rings: Vec<EventRing>,
    dumps: Vec<FlightDump>,
    suppressed_dumps: u64,
    max_dumps: usize,
    timeline_bin: Nanos,
    /// Per-server timeline samples, filled by the runtime's sampler.
    pub timeline: Timeline,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing; every hook is a single branch.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            threshold: 0,
            seed_mix: 0,
            spans: Vec::new(),
            dropped: 0,
            rings: Vec::new(),
            dumps: Vec::new(),
            suppressed_dumps: 0,
            max_dumps: 0,
            timeline_bin: Nanos::ZERO,
            timeline: Timeline::new(0),
        }
    }

    /// An active tracer for a cluster of `servers` servers.
    pub fn new(servers: usize, config: &TraceConfig) -> Self {
        let rate = config.sample_rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        Tracer {
            enabled: true,
            threshold,
            seed_mix: mix64(config.seed ^ 0x7ace_7ace_7ace_7ace),
            spans: Vec::with_capacity(config.span_capacity),
            dropped: 0,
            rings: (0..servers)
                .map(|_| EventRing::new(config.ring_capacity.max(1)))
                .collect(),
            dumps: Vec::new(),
            suppressed_dumps: 0,
            max_dumps: config.max_flight_dumps,
            timeline_bin: config.timeline_bin,
            timeline: Timeline::new(config.timeline_bin.as_nanos()),
        }
    }

    /// Whether tracing is active. Instrumentation hooks branch on this
    /// before constructing an event, so a disabled tracer costs one load
    /// and one branch per hook.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The timeline sampling interval.
    pub fn timeline_bin(&self) -> Nanos {
        self.timeline_bin
    }

    /// The deterministic head-sampling decision for a request id.
    #[inline]
    pub fn sampled(&self, request: u64) -> bool {
        self.threshold == u64::MAX || mix64(request ^ self.seed_mix) < self.threshold
    }

    /// Records one event: always into the owning server's flight ring,
    /// and into the span buffer when the request is sampled (lifecycle
    /// events — migrations, server failures — bypass sampling).
    ///
    /// `#[cold]`: call sites live inside the runtime's hottest loops,
    /// guarded by [`Tracer::enabled`]; keeping the recording path out of
    /// line keeps those loops' code untouched when tracing is off.
    #[cold]
    #[inline(never)]
    pub fn record(&mut self, ev: SpanEvent) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.rings.get_mut(ev.server as usize) {
            ring.push(ev);
        }
        if ev.kind.is_lifecycle() || self.sampled(ev.request) {
            if self.spans.len() < self.spans.capacity() {
                self.spans.push(ev);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Snapshots `server`'s ring into a [`FlightDump`] annotated with the
    /// trigger. Call *after* recording the trigger event itself so the
    /// dump's last entry names the anomaly.
    #[cold]
    #[inline(never)]
    pub fn flight_dump(&mut self, trigger: HopKind, request: u64, server: u32, at: Nanos) {
        if !self.enabled {
            return;
        }
        if self.dumps.len() >= self.max_dumps {
            self.suppressed_dumps += 1;
            return;
        }
        let events = self
            .rings
            .get(server as usize)
            .map(EventRing::snapshot)
            .unwrap_or_default();
        self.dumps.push(FlightDump {
            trigger,
            request,
            server,
            at,
            events,
        });
    }

    /// Recorded (sampled) spans, in recording order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Spans dropped because the preallocated buffer filled up.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    /// Flight dumps captured this run.
    pub fn flight_dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Anomalies past [`TraceConfig::max_flight_dumps`] whose ring
    /// snapshot was not stored.
    pub fn suppressed_flight_dumps(&self) -> u64 {
        self.suppressed_dumps
    }

    /// Number of servers the tracer was built for.
    pub fn server_count(&self) -> usize {
        self.rings.len()
    }

    /// Folds another tracer's recordings into this one: spans append (in
    /// the other tracer's recording order), drop and suppression counters
    /// sum, and flight dumps append up to this tracer's cap. The sharded
    /// runtime records per shard and merges at the end of a run; span
    /// *counts* are partition-invariant, recording order is not, so
    /// consumers comparing merged traces should use order-insensitive
    /// digests.
    pub fn merge_from(&mut self, other: &Tracer) {
        if !other.enabled {
            return;
        }
        if !self.enabled {
            // Adopt the other tracer's shape so a merge target can start
            // from `Tracer::disabled()`.
            self.enabled = true;
            self.threshold = other.threshold;
            self.seed_mix = other.seed_mix;
            self.max_dumps = other.max_dumps;
            self.timeline_bin = other.timeline_bin;
            self.spans.reserve(other.spans.capacity());
        }
        for &ev in &other.spans {
            if self.spans.len() < self.spans.capacity() {
                self.spans.push(ev);
            } else {
                self.dropped += 1;
            }
        }
        self.dropped += other.dropped;
        for dump in &other.dumps {
            if self.dumps.len() < self.max_dumps {
                self.dumps.push(dump.clone());
            } else {
                self.suppressed_dumps += 1;
            }
        }
        self.suppressed_dumps += other.suppressed_dumps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(request: u64, server: u32, at: u64) -> SpanEvent {
        SpanEvent::instant(request, HopKind::GatewayAdmit, server, 0, Nanos(at))
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        t.record(ev(1, 0, 10));
        t.flight_dump(HopKind::Timeout, 1, 0, Nanos(10));
        assert!(t.spans().is_empty());
        assert!(t.flight_dumps().is_empty());
    }

    #[test]
    fn rate_one_keeps_everything_rate_zero_nothing() {
        let cfg = TraceConfig {
            sample_rate: 1.0,
            ..TraceConfig::default()
        };
        let mut all = Tracer::new(2, &cfg);
        let mut none = Tracer::new(
            2,
            &TraceConfig {
                sample_rate: 0.0,
                ..cfg
            },
        );
        for r in 0..100 {
            all.record(ev(r, 0, r));
            none.record(ev(r, 0, r));
        }
        assert_eq!(all.spans().len(), 100);
        assert_eq!(none.spans().len(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_seed_dependent() {
        let cfg = |seed| TraceConfig {
            sample_rate: 0.3,
            seed,
            ..TraceConfig::default()
        };
        let a = Tracer::new(1, &cfg(7));
        let b = Tracer::new(1, &cfg(7));
        let c = Tracer::new(1, &cfg(8));
        let pick = |t: &Tracer| (0u64..10_000).filter(|&r| t.sampled(r)).collect::<Vec<_>>();
        let (pa, pb, pc) = (pick(&a), pick(&b), pick(&c));
        assert_eq!(pa, pb, "same seed must sample the same requests");
        assert_ne!(pa, pc, "different seeds must sample differently");
        // The realized rate is in the right ballpark.
        let rate = pa.len() as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn lifecycle_events_bypass_sampling() {
        let mut t = Tracer::new(
            1,
            &TraceConfig {
                sample_rate: 0.0,
                ..TraceConfig::default()
            },
        );
        t.record(SpanEvent::instant(5, HopKind::Migration, 0, 1, Nanos(9)));
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_dump_names_trigger() {
        let mut t = Tracer::new(
            1,
            &TraceConfig {
                ring_capacity: 4,
                ..TraceConfig::default()
            },
        );
        for r in 0..10 {
            t.record(ev(r, 0, r));
        }
        t.flight_dump(HopKind::Shed, 9, 0, Nanos(9));
        let dumps = t.flight_dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.trigger, HopKind::Shed);
        assert_eq!(d.request, 9);
        assert_eq!(d.events.len(), 4, "ring keeps the last 4");
        let reqs: Vec<u64> = d.events.iter().map(|e| e.request).collect();
        assert_eq!(reqs, vec![6, 7, 8, 9], "oldest first");
    }

    #[test]
    fn span_buffer_caps_and_counts_drops() {
        let mut t = Tracer::new(
            1,
            &TraceConfig {
                span_capacity: 8,
                ..TraceConfig::default()
            },
        );
        for r in 0..20 {
            t.record(ev(r, 0, r));
        }
        assert_eq!(t.spans().len(), 8);
        assert_eq!(t.dropped_spans(), 12);
    }

    #[test]
    fn merge_appends_spans_and_sums_drops() {
        let cfg = TraceConfig {
            span_capacity: 8,
            ..TraceConfig::default()
        };
        let mut a = Tracer::new(1, &cfg);
        let mut b = Tracer::new(1, &cfg);
        for r in 0..3 {
            a.record(ev(r, 0, r));
        }
        for r in 10..22 {
            b.record(ev(r, 0, r));
        }
        assert_eq!(b.dropped_spans(), 4);
        let mut merged = Tracer::disabled();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.spans().len(), 8, "caps at adopted capacity");
        assert_eq!(merged.dropped_spans(), 3 + 4, "3 over cap + 4 inherited");
        // Merging a disabled tracer is a no-op.
        let before = merged.spans().len();
        merged.merge_from(&Tracer::disabled());
        assert_eq!(merged.spans().len(), before);
    }

    #[test]
    fn dump_cap_suppresses_extras() {
        let mut t = Tracer::new(
            1,
            &TraceConfig {
                max_flight_dumps: 2,
                ..TraceConfig::default()
            },
        );
        for r in 0..5 {
            t.flight_dump(HopKind::Timeout, r, 0, Nanos(r));
        }
        assert_eq!(t.flight_dumps().len(), 2);
        assert_eq!(t.suppressed_flight_dumps(), 3);
    }
}
