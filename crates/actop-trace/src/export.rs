//! Trace exporters: Chrome trace-event JSON, JSONL span dumps, flight
//! dumps, and the per-hop latency decomposition.
//!
//! The Chrome format (one JSON object with a `traceEvents` array) opens
//! directly in Perfetto or `chrome://tracing`. Layout: one *process* per
//! server (plus a synthetic "clients" process), one *thread* per
//! stage × {queue, service} plus a network track and an events track, and
//! per-server counter tracks for queue depth, thread allocation, and CPU
//! utilization from the timeline sampler. All output is generated in a
//! deterministic order, so two runs with the same seed produce
//! byte-identical files.

use std::fmt::Write as _;

use actop_sim::Nanos;

use crate::json::{parse_json, Json};
use crate::span::{HopKind, SpanEvent, NO_SERVER, PROC_LABEL, QUEUE_LABEL};
use crate::tracer::Tracer;

/// Track (Chrome `tid`) for network-transfer spans.
const TID_NETWORK: u32 = 8;
/// Track for instantaneous lifecycle events.
const TID_EVENTS: u32 = 9;

/// Track of an event within its server's process.
fn tid_of(ev: &SpanEvent) -> u32 {
    match ev.kind {
        HopKind::QueueWait => ev.stage as u32 * 2,
        HopKind::Service => ev.stage as u32 * 2 + 1,
        HopKind::Network => TID_NETWORK,
        _ => TID_EVENTS,
    }
}

/// Display name of a track.
fn track_name(tid: u32) -> &'static str {
    const STAGE: [&str; 4] = ["receiver", "worker", "server-sender", "client-sender"];
    match tid {
        0 | 2 | 4 | 6 => STAGE[(tid / 2) as usize],
        1 | 3 | 5 | 7 => STAGE[(tid / 2) as usize],
        TID_NETWORK => "network",
        _ => "events",
    }
}

/// Qualified track name ("worker queue", "worker service", ...).
fn track_label(tid: u32) -> String {
    match tid {
        0 | 2 | 4 | 6 => format!("{} queue", track_name(tid)),
        1 | 3 | 5 | 7 => format!("{} service", track_name(tid)),
        _ => track_name(tid).to_string(),
    }
}

/// Sim-time nanoseconds rendered as Chrome's microsecond `ts` with
/// nanosecond precision.
fn ts_us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// The synthetic process id used for client-side events.
fn client_pid(tracer: &Tracer) -> u32 {
    tracer.server_count() as u32
}

fn event_pid(tracer: &Tracer, ev: &SpanEvent) -> u32 {
    if ev.server == NO_SERVER {
        client_pid(tracer)
    } else {
        ev.server
    }
}

/// Serializes a tracer's spans and timeline as Chrome trace-event JSON.
pub fn chrome_trace(tracer: &Tracer) -> String {
    // Sort key: (pid, tid, t_start, recording index). The stable recording
    // index breaks ties deterministically, and sorting by t_start makes
    // `ts` monotone within every track.
    let mut order: Vec<(u32, u32, u64, usize)> = tracer
        .spans()
        .iter()
        .enumerate()
        .map(|(i, ev)| (event_pid(tracer, ev), tid_of(ev), ev.t_start.as_nanos(), i))
        .collect();
    order.sort_unstable();

    let mut out = String::with_capacity(128 * order.len() + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    // Metadata: process and thread names for every track in use.
    let mut tracks: Vec<(u32, u32)> = order.iter().map(|&(p, t, _, _)| (p, t)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut pids: Vec<u32> = tracks.iter().map(|&(p, _)| p).collect();
    pids.sort_unstable();
    pids.dedup();
    for &pid in &pids {
        let name = if pid == client_pid(tracer) {
            "clients".to_string()
        } else {
            format!("server-{pid}")
        };
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    for &(pid, tid) in &tracks {
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                track_label(tid)
            ),
        );
    }

    // Span and instant events.
    for &(pid, tid, _, i) in &order {
        let ev = &tracer.spans()[i];
        let line = if ev.kind.is_span() {
            format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{{\"req\":{},\"aux\":{}}}}}",
                ts_us(ev.t_start.as_nanos()),
                ts_us(ev.duration().as_nanos()),
                ev.kind.name(),
                ev.request,
                ev.aux,
            )
        } else {
            format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"args\":{{\"req\":{},\"aux\":{}}}}}",
                ts_us(ev.t_start.as_nanos()),
                ev.kind.name(),
                ev.request,
                ev.aux,
            )
        };
        push(&mut out, &mut first, &line);
    }

    // Timeline counters: one queue-depth, one thread, and one utilization
    // track per server. Samples are recorded time-major, but sort anyway
    // so `ts` is monotone per (pid, counter name) by construction.
    let mut counter_order: Vec<(u32, u64, usize)> = tracer
        .timeline
        .samples()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.server, s.at_ns, i))
        .collect();
    counter_order.sort_unstable();
    for counter in 0..3u8 {
        for &(server, at_ns, i) in &counter_order {
            let s = &tracer.timeline.samples()[i];
            let (name, args) = match counter {
                0 => (
                    "queue depth",
                    format!(
                        "{{\"recv\":{},\"worker\":{},\"ssend\":{},\"csend\":{}}}",
                        s.queue_len[0], s.queue_len[1], s.queue_len[2], s.queue_len[3]
                    ),
                ),
                1 => (
                    "threads",
                    format!(
                        "{{\"recv\":{},\"worker\":{},\"ssend\":{},\"csend\":{}}}",
                        s.threads[0], s.threads[1], s.threads[2], s.threads[3]
                    ),
                ),
                _ => ("cpu util", format!("{{\"busy\":{:.4}}}", s.utilization)),
            };
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"C\",\"pid\":{server},\"ts\":{},\"name\":\"{name}\",\"args\":{args}}}",
                    ts_us(at_ns),
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Serializes one span event as a single JSON object (no newline).
fn span_json(ev: &SpanEvent) -> String {
    format!(
        "{{\"req\":{},\"kind\":\"{}\",\"server\":{},\"stage\":{},\"aux\":{},\"t0_ns\":{},\"t1_ns\":{}}}",
        ev.request,
        ev.kind.name(),
        ev.server,
        ev.stage,
        ev.aux,
        ev.t_start.as_nanos(),
        ev.t_end.as_nanos(),
    )
}

/// Serializes the sampled spans as JSONL, one event per line, in
/// recording order (`server` 4294967295 and `stage` 255 are the "none"
/// sentinels).
pub fn spans_jsonl(tracer: &Tracer) -> String {
    let mut out = String::with_capacity(96 * tracer.spans().len());
    for ev in tracer.spans() {
        out.push_str(&span_json(ev));
        out.push('\n');
    }
    out
}

/// Parses a [`spans_jsonl`] document back into span events (the inverse
/// of the JSONL exporter; blank lines are skipped). This is the entry
/// point for offline trace tools — notably the `actop-verify` invariant
/// checker — that consume exported traces rather than a live [`Tracer`].
pub fn parse_spans_jsonl(text: &str) -> Result<Vec<SpanEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let field = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing numeric field '{name}'", lineno + 1))
        };
        let kind_name = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string field 'kind'", lineno + 1))?;
        let kind = HopKind::from_name(kind_name)
            .ok_or_else(|| format!("line {}: unknown hop kind '{kind_name}'", lineno + 1))?;
        out.push(SpanEvent {
            request: field("req")? as u64,
            kind,
            server: field("server")? as u32,
            stage: field("stage")? as u8,
            aux: field("aux")? as u64,
            t_start: Nanos(field("t0_ns")? as u64),
            t_end: Nanos(field("t1_ns")? as u64),
        });
    }
    Ok(out)
}

/// Serializes the flight-recorder dumps as one JSON document.
pub fn flight_json(tracer: &Tracer) -> String {
    let mut out = String::from("{\"dumps\":[\n");
    for (i, dump) in tracer.flight_dumps().iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"trigger\":\"{}\",\"request\":{},\"server\":{},\"at_ns\":{},\"events\":[",
            dump.trigger.name(),
            dump.request,
            dump.server,
            dump.at.as_nanos(),
        );
        for (j, ev) in dump.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&span_json(ev));
        }
        out.push_str("]}");
    }
    let _ = write!(
        out,
        "\n],\"suppressed\":{}}}\n",
        tracer.suppressed_flight_dumps()
    );
    out
}

/// Derives the per-hop latency decomposition from recorded spans: total
/// nanoseconds per Fig. 4 component label, in first-seen order. This is
/// the trace-side half of the cross-check against the runtime's
/// independent `Breakdown` accounting — at sample rate 1.0 the two must
/// agree component by component.
pub fn decompose(spans: &[SpanEvent]) -> Vec<(&'static str, f64)> {
    let mut out: Vec<(&'static str, f64)> = Vec::new();
    let mut add = |label: &'static str, ns: f64| match out.iter_mut().find(|(l, _)| *l == label) {
        Some((_, sum)) => *sum += ns,
        None => out.push((label, ns)),
    };
    for ev in spans {
        let ns = ev.duration().as_nanos() as f64;
        match ev.kind {
            HopKind::QueueWait => add(QUEUE_LABEL[ev.stage as usize], ns),
            HopKind::Service => add(PROC_LABEL[ev.stage as usize], ns),
            HopKind::Network => add("Network", ns),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::tracer::TraceConfig;
    use actop_metrics::TimelineSample;
    use actop_sim::Nanos;

    fn demo_tracer() -> Tracer {
        let mut t = Tracer::new(2, &TraceConfig::default());
        t.record(SpanEvent::instant(
            1,
            HopKind::GatewayAdmit,
            0,
            0,
            Nanos(1_000),
        ));
        t.record(SpanEvent {
            request: 1,
            kind: HopKind::QueueWait,
            server: 0,
            stage: 0,
            aux: 0,
            t_start: Nanos(1_000),
            t_end: Nanos(3_000),
        });
        t.record(SpanEvent {
            request: 1,
            kind: HopKind::Service,
            server: 0,
            stage: 1,
            aux: 0,
            t_start: Nanos(3_000),
            t_end: Nanos(9_000),
        });
        t.record(SpanEvent {
            request: 1,
            kind: HopKind::Network,
            server: 0,
            stage: crate::span::NO_STAGE,
            aux: 1,
            t_start: Nanos(9_000),
            t_end: Nanos(59_000),
        });
        t.record(SpanEvent::instant(
            1,
            HopKind::ClientDone,
            NO_SERVER,
            0,
            Nanos(60_000),
        ));
        t.timeline.push(TimelineSample {
            at_ns: 50_000,
            server: 0,
            queue_len: [3, 1, 0, 0],
            busy_threads: [2, 1, 0, 0],
            threads: [8, 8, 8, 8],
            utilization: 0.25,
        });
        t
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let t = demo_tracer();
        let json = chrome_trace(&t);
        let stats = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(stats.complete_spans, 3);
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.counters, 3, "one sample × three counter tracks");
        assert!(stats.tracks >= 4);
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let a = chrome_trace(&demo_tracer());
        let b = chrome_trace(&demo_tracer());
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_has_one_line_per_span() {
        let t = demo_tracer();
        let jsonl = spans_jsonl(&t);
        assert_eq!(jsonl.lines().count(), t.spans().len());
        for line in jsonl.lines() {
            crate::json::parse_json(line).expect("each line parses");
        }
    }

    #[test]
    fn jsonl_round_trips_through_parser() {
        let t = demo_tracer();
        let jsonl = spans_jsonl(&t);
        let parsed = parse_spans_jsonl(&jsonl).expect("round trip");
        assert_eq!(parsed, t.spans());
        assert!(parse_spans_jsonl("{\"kind\":\"nope\"}\n").is_err());
        assert!(parse_spans_jsonl("not json\n").is_err());
    }

    #[test]
    fn decompose_sums_by_component() {
        let t = demo_tracer();
        let d = decompose(t.spans());
        let get = |label: &str| {
            d.iter()
                .find(|(l, _)| *l == label)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        assert_eq!(get("Recv. queue"), 2_000.0);
        assert_eq!(get("Worker processing"), 6_000.0);
        assert_eq!(get("Network"), 50_000.0);
    }

    #[test]
    fn flight_json_parses_and_names_trigger() {
        let mut t = demo_tracer();
        t.flight_dump(HopKind::Timeout, 1, 0, Nanos(70_000));
        let json = flight_json(&t);
        let doc = crate::json::parse_json(&json).expect("flight json parses");
        let dumps = doc.get("dumps").and_then(Json::as_array).expect("dumps");
        assert_eq!(dumps.len(), 1);
        assert_eq!(
            dumps[0].get("trigger").and_then(Json::as_str),
            Some("timeout")
        );
        assert_eq!(dumps[0].get("request").and_then(Json::as_f64), Some(1.0));
        use crate::json::Json;
        let events = dumps[0].get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 4, "ring holds the server-0 events");
    }
}
