//! The flat span-event record and the hop taxonomy.
//!
//! Every observable step of a message's lifecycle is one [`SpanEvent`]: a
//! fixed-size, `Copy` record of *what* happened (a [`HopKind`]), *where*
//! (server and SEDA stage), *to which request*, and *when* (sim-time start
//! and end). Durationful hops (queue wait, service, network transfer) have
//! `t_start < t_end`; instantaneous lifecycle marks (admission, shedding,
//! forwards, migrations, timeouts) have `t_start == t_end`.

use actop_sim::Nanos;

/// Sentinel for "no server" (e.g. completion observed at the client).
pub const NO_SERVER: u32 = u32::MAX;

/// Sentinel for "no stage" (events not tied to a SEDA stage).
pub const NO_STAGE: u8 = u8::MAX;

/// Breakdown component labels for per-stage queue wait, matching Fig. 4 of
/// the paper (both sender stages share the "Sender" label, as in the
/// figure). The runtime's `Breakdown` accounting and the trace-derived
/// decomposition both use these, so the two independent measurement paths
/// are comparable component by component.
pub const QUEUE_LABEL: [&str; 4] = [
    "Recv. queue",
    "Worker queue",
    "Sender queue",
    "Sender queue",
];

/// Breakdown component labels for per-stage processing time (Fig. 4).
pub const PROC_LABEL: [&str; 4] = [
    "Recv. processing",
    "Worker processing",
    "Sender processing",
    "Sender processing",
];

/// What kind of lifecycle step a [`SpanEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HopKind {
    /// A client request was admitted at its gateway server (instant).
    GatewayAdmit,
    /// A client request was shed by overload control (instant; triggers a
    /// flight-recorder dump).
    Shed,
    /// An item waited in a SEDA stage queue (span; `stage` is set).
    QueueWait,
    /// A stage thread processed an item, including any synchronous
    /// blocking wait (span; `stage` is set).
    Service,
    /// A message crossed the network (span; `aux` is the destination
    /// server, or [`NO_SERVER`] for the client).
    Network,
    /// An actor-to-actor call dispatched to an actor on the same server
    /// (instant; `aux` is the destination server).
    LocalDispatch,
    /// An actor-to-actor call dispatched to a remote server, paying the
    /// serialize → network → deserialize path (instant; `aux` is the
    /// destination server).
    RemoteDispatch,
    /// A message was re-routed because the target actor was not hosted
    /// where it arrived — migration races and gateway hops (instant;
    /// `aux` is the new destination).
    Forward,
    /// A message addressed to a crashed server was re-routed to a live
    /// one (instant; recorded at the retry server, `aux` is the crashed
    /// server).
    FailoverRetry,
    /// An actor migrated between servers (instant; `request` carries the
    /// *actor* id, `server` the source, `aux` the destination).
    Migration,
    /// A client request was abandoned by its timeout (instant; triggers a
    /// flight-recorder dump of the gateway's ring).
    Timeout,
    /// A server crashed (instant; triggers a flight-recorder dump).
    ServerFail,
    /// A response arrived for an already-abandoned request or join
    /// (instant).
    StaleResponse,
    /// The response reached the client; the request is complete (instant;
    /// `server` is [`NO_SERVER`]).
    ClientDone,
    /// A message died in flight: its destination crashed while it was on
    /// the wire, a lossy link dropped it, or a forward loop was cut
    /// (instant; `server` is where it would have arrived).
    MsgLost,
    /// The sender's transport scheduled a backoff retry for a request
    /// whose delivery failed (instant; `server` is the dead destination,
    /// `aux` the attempt number).
    Retry,
    /// A failure detector transitioned a peer to *suspected* (instant;
    /// lifecycle — `request` carries the suspected server id, `server`
    /// the observer; triggers a flight-recorder dump).
    Suspect,
    /// A failure detector cleared a suspicion after hearing a heartbeat
    /// (instant; lifecycle — same field conventions as [`Self::Suspect`]).
    Unsuspect,
    /// A directory entry pointing at a suspected server was dropped so the
    /// actor re-places (instant; lifecycle — `request` carries the actor
    /// id, `server` the observer, `aux` the suspected host).
    DirRepair,
    /// An in-flight migration aborted because an endpoint crashed
    /// (instant; lifecycle — `request` carries the actor id, `server` the
    /// source, `aux` the destination).
    MigrationAbort,
    /// An SLO burn-rate alert opened (instant; lifecycle — `request`
    /// carries the SLO spec index, `server` is [`NO_SERVER`], `aux` the
    /// bin index at which the alert fired).
    SloOpen,
    /// An SLO burn-rate alert closed (instant; lifecycle — same field
    /// conventions as [`Self::SloOpen`]).
    SloClose,
    /// A hot actor gained a read replica (instant; lifecycle — `request`
    /// carries the actor id, `server` the primary, `aux` the replica's
    /// server).
    Split,
    /// An in-flight split aborted because an endpoint crashed (instant;
    /// lifecycle — same field conventions as [`Self::Split`]).
    SplitAbort,
    /// A replica activation was dropped — demand cooled, its server
    /// crashed, or its server came under suspicion (instant; lifecycle —
    /// same field conventions as [`Self::Split`]).
    ReplicaDrop,
    /// A read-mostly request executed at a replica instead of the primary
    /// (instant; `request` is the client request, `server` the replica,
    /// `aux` the actor id).
    ReplicaRead,
    /// A snapshot round opened at the coordinator (instant; lifecycle —
    /// `request` carries the round id, `server` the coordinator).
    SnapBegin,
    /// A server processed a snapshot round's marker, joining the cut
    /// (instant; lifecycle — `request` carries the round id, `server` the
    /// marked server).
    SnapMarker,
    /// An actor's pre-marker state was captured into an open round
    /// (instant; lifecycle — `request` carries the actor id, `server` its
    /// host, `aux` packs `(round << 40) | version`).
    SnapCapture,
    /// A snapshot round committed as complete (instant; lifecycle —
    /// `request` carries the round id, `server` the coordinator, `aux`
    /// the number of actors captured).
    SnapComplete,
    /// A snapshot round aborted because a participant crashed mid-round
    /// (instant; lifecycle — `request` carries the round id, `server` the
    /// crashed server).
    SnapAbort,
    /// A state-mutating request advanced its actor's durable state cell
    /// (instant; lifecycle — `request` carries the actor id, `server` its
    /// host, `aux` the new version).
    StateWrite,
    /// A re-placed actor rehydrated from the snapshot store (instant;
    /// lifecycle — `request` carries the actor id, `server` the new host,
    /// `aux` packs `(round << 40) | restored_version`).
    Restore,
}

impl HopKind {
    /// Every kind, in declaration order. Checkers and exporters that build
    /// per-kind histograms iterate this instead of hand-listing variants.
    pub const ALL: [HopKind; 33] = [
        HopKind::GatewayAdmit,
        HopKind::Shed,
        HopKind::QueueWait,
        HopKind::Service,
        HopKind::Network,
        HopKind::LocalDispatch,
        HopKind::RemoteDispatch,
        HopKind::Forward,
        HopKind::FailoverRetry,
        HopKind::Migration,
        HopKind::Timeout,
        HopKind::ServerFail,
        HopKind::StaleResponse,
        HopKind::ClientDone,
        HopKind::MsgLost,
        HopKind::Retry,
        HopKind::Suspect,
        HopKind::Unsuspect,
        HopKind::DirRepair,
        HopKind::MigrationAbort,
        HopKind::SloOpen,
        HopKind::SloClose,
        HopKind::Split,
        HopKind::SplitAbort,
        HopKind::ReplicaDrop,
        HopKind::ReplicaRead,
        HopKind::SnapBegin,
        HopKind::SnapMarker,
        HopKind::SnapCapture,
        HopKind::SnapComplete,
        HopKind::SnapAbort,
        HopKind::StateWrite,
        HopKind::Restore,
    ];

    /// Inverse of [`HopKind::name`], for JSONL re-import.
    pub fn from_name(name: &str) -> Option<HopKind> {
        HopKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Short display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            HopKind::GatewayAdmit => "admit",
            HopKind::Shed => "shed",
            HopKind::QueueWait => "queue",
            HopKind::Service => "service",
            HopKind::Network => "net",
            HopKind::LocalDispatch => "lpc",
            HopKind::RemoteDispatch => "rpc",
            HopKind::Forward => "forward",
            HopKind::FailoverRetry => "failover",
            HopKind::Migration => "migrate",
            HopKind::Timeout => "timeout",
            HopKind::ServerFail => "server-fail",
            HopKind::StaleResponse => "stale",
            HopKind::ClientDone => "done",
            HopKind::MsgLost => "msg-lost",
            HopKind::Retry => "retry",
            HopKind::Suspect => "suspect",
            HopKind::Unsuspect => "unsuspect",
            HopKind::DirRepair => "dir-repair",
            HopKind::MigrationAbort => "migration-abort",
            HopKind::SloOpen => "slo-open",
            HopKind::SloClose => "slo-close",
            HopKind::Split => "split",
            HopKind::SplitAbort => "split-abort",
            HopKind::ReplicaDrop => "replica-drop",
            HopKind::ReplicaRead => "replica-read",
            HopKind::SnapBegin => "snap-begin",
            HopKind::SnapMarker => "snap-marker",
            HopKind::SnapCapture => "snap-capture",
            HopKind::SnapComplete => "snap-complete",
            HopKind::SnapAbort => "snap-abort",
            HopKind::StateWrite => "state-write",
            HopKind::Restore => "restore",
        }
    }

    /// True for durationful hops (exported as Chrome "X" complete events);
    /// false for instantaneous marks (exported as "i" instant events).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            HopKind::QueueWait | HopKind::Service | HopKind::Network
        )
    }

    /// True for cluster-lifecycle events not tied to a client request
    /// (recorded regardless of the head-sampling decision).
    pub fn is_lifecycle(self) -> bool {
        matches!(
            self,
            HopKind::Migration
                | HopKind::ServerFail
                | HopKind::Suspect
                | HopKind::Unsuspect
                | HopKind::DirRepair
                | HopKind::MigrationAbort
                | HopKind::SloOpen
                | HopKind::SloClose
                | HopKind::Split
                | HopKind::SplitAbort
                | HopKind::ReplicaDrop
                | HopKind::SnapBegin
                | HopKind::SnapMarker
                | HopKind::SnapCapture
                | HopKind::SnapComplete
                | HopKind::SnapAbort
                | HopKind::StateWrite
                | HopKind::Restore
        )
    }
}

/// One flat trace record. `Copy` and fixed-size so the tracer's
/// preallocated buffer and the flight-recorder rings never chase pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The root client request id (for [`HopKind::Migration`]: the actor
    /// id).
    pub request: u64,
    /// What happened.
    pub kind: HopKind,
    /// Server where the event was observed, or [`NO_SERVER`].
    pub server: u32,
    /// SEDA stage index, or [`NO_STAGE`].
    pub stage: u8,
    /// Kind-specific companion value (destination server, actor
    /// destination, ...); 0 when unused.
    pub aux: u64,
    /// Sim-time start.
    pub t_start: Nanos,
    /// Sim-time end (== `t_start` for instants).
    pub t_end: Nanos,
}

impl SpanEvent {
    /// Builds an instantaneous event.
    pub fn instant(request: u64, kind: HopKind, server: u32, aux: u64, at: Nanos) -> Self {
        SpanEvent {
            request,
            kind,
            server,
            stage: NO_STAGE,
            aux,
            t_start: at,
            t_end: at,
        }
    }

    /// Duration of the event (zero for instants).
    pub fn duration(&self) -> Nanos {
        self.t_end.saturating_sub(self.t_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instants_have_zero_duration() {
        let e = SpanEvent::instant(3, HopKind::Shed, 1, 0, Nanos::from_micros(5));
        assert_eq!(e.duration(), Nanos::ZERO);
        assert_eq!(e.stage, NO_STAGE);
        assert!(!e.kind.is_span());
    }

    #[test]
    fn span_kinds_are_durationful() {
        for kind in [HopKind::QueueWait, HopKind::Service, HopKind::Network] {
            assert!(kind.is_span());
            assert!(!kind.is_lifecycle());
        }
        assert!(HopKind::Migration.is_lifecycle());
        assert!(HopKind::ServerFail.is_lifecycle());
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = HopKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HopKind::ALL.len());
    }

    #[test]
    fn from_name_round_trips_every_kind() {
        for kind in HopKind::ALL {
            assert_eq!(HopKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(HopKind::from_name("no-such-kind"), None);
    }
}
