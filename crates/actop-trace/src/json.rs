//! Minimal JSON parser and Chrome trace-event validator.
//!
//! The workspace is offline and vendors no serde, so the CI trace checker
//! carries its own recursive-descent parser. It accepts the JSON subset
//! our exporters emit (objects, arrays, strings with `\"`/`\\`/`\u`
//! escapes, numbers, booleans, null) — enough to round-trip and validate
//! any trace file this repo produces.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(value)
}

/// Summary of a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceStats {
    /// Total entries in `traceEvents`.
    pub total_events: usize,
    /// `ph == "X"` complete spans.
    pub complete_spans: usize,
    /// `ph == "i"` instant events.
    pub instants: usize,
    /// `ph == "C"` counter samples.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks carrying spans or instants.
    pub tracks: usize,
}

fn num_field(ev: &Json, key: &str, idx: usize) -> Result<f64, String> {
    ev.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event {idx}: missing numeric '{key}'"))
}

/// Validates a Chrome trace-event document: well-formed JSON, a non-empty
/// `traceEvents` array, required fields per phase, and `ts` monotone
/// non-decreasing within every `(pid, tid)` track (spans + instants) and
/// every `(pid, name)` counter track.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing 'traceEvents' array")?;
    if events.is_empty() {
        return Err("empty 'traceEvents' array".into());
    }

    let mut stats = ChromeTraceStats {
        total_events: events.len(),
        ..ChromeTraceStats::default()
    };
    let mut track_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut counter_ts: BTreeMap<(u64, String), f64> = BTreeMap::new();

    for (idx, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing 'ph'"))?;
        match ph {
            "M" => {}
            "X" | "i" => {
                let pid = num_field(ev, "pid", idx)? as u64;
                let tid = num_field(ev, "tid", idx)? as u64;
                let ts = num_field(ev, "ts", idx)?;
                if ph == "X" {
                    let dur = num_field(ev, "dur", idx)?;
                    if dur < 0.0 {
                        return Err(format!("event {idx}: negative dur {dur}"));
                    }
                    stats.complete_spans += 1;
                } else {
                    stats.instants += 1;
                }
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {idx}: missing 'name'"))?;
                if let Some(&prev) = track_ts.get(&(pid, tid)) {
                    if ts < prev {
                        return Err(format!(
                            "event {idx}: ts {ts} < {prev} on track ({pid}, {tid})"
                        ));
                    }
                }
                track_ts.insert((pid, tid), ts);
            }
            "C" => {
                let pid = num_field(ev, "pid", idx)? as u64;
                let ts = num_field(ev, "ts", idx)?;
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {idx}: counter missing 'name'"))?;
                let key = (pid, name.to_string());
                if let Some(&prev) = counter_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "event {idx}: counter '{name}' ts {ts} < {prev} on pid {pid}"
                        ));
                    }
                }
                counter_ts.insert(key, ts);
                stats.counters += 1;
            }
            other => return Err(format!("event {idx}: unknown phase '{other}'")),
        }
    }
    stats.tracks = track_ts.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse_json(r#"{"a": [1, -2.5e3, "x\ny", true, null], "b": {}}"#).unwrap();
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_str(), Some("x\ny"));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(doc.get("b"), Some(&Json::Obj(Default::default())));
    }

    #[test]
    fn unicode_escape_and_utf8() {
        let doc = parse_json(r#""café — déjà""#).unwrap();
        assert_eq!(doc.as_str(), Some("café — déjà"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("[] trailing").is_err());
        assert!(parse_json(r#""unterminated"#).is_err());
    }

    #[test]
    fn validates_a_minimal_trace() {
        let trace = r#"{"traceEvents":[
            {"ph":"M","pid":0,"name":"process_name","args":{"name":"server-0"}},
            {"ph":"X","pid":0,"tid":1,"ts":1.0,"dur":2.0,"name":"service","args":{}},
            {"ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0,"name":"service","args":{}},
            {"ph":"i","s":"t","pid":0,"tid":9,"ts":2.0,"name":"admit","args":{}},
            {"ph":"C","pid":0,"ts":0.5,"name":"queue depth","args":{"recv":1}}
        ]}"#;
        let stats = validate_chrome_trace(trace).unwrap();
        assert_eq!(stats.total_events, 5);
        assert_eq!(stats.complete_spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.tracks, 2);
    }

    #[test]
    fn rejects_non_monotone_track() {
        let trace = r#"{"traceEvents":[
            {"ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0,"name":"a","args":{}},
            {"ph":"X","pid":0,"tid":1,"ts":4.0,"dur":1.0,"name":"b","args":{}}
        ]}"#;
        let err = validate_chrome_trace(trace).unwrap_err();
        assert!(err.contains("ts 4 < 5"), "got: {err}");
        // Same timestamps on *different* tracks are fine.
        let ok = r#"{"traceEvents":[
            {"ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0,"name":"a","args":{}},
            {"ph":"X","pid":1,"tid":1,"ts":4.0,"dur":1.0,"name":"b","args":{}}
        ]}"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }

    #[test]
    fn rejects_empty_and_missing_fields() {
        assert!(validate_chrome_trace(r#"{"traceEvents":[]}"#).is_err());
        assert!(validate_chrome_trace(r#"{"other":1}"#).is_err());
        let no_ts = r#"{"traceEvents":[{"ph":"X","pid":0,"tid":1,"dur":1.0,"name":"a"}]}"#;
        assert!(validate_chrome_trace(no_ts).is_err());
    }
}
