//! Causal request tracing and an anomaly flight recorder for the ActOp
//! runtime.
//!
//! The paper's whole argument is about *where* latency lives — remote-call
//! serialization, per-stage queue wait, migration hiccups — but aggregate
//! histograms cannot follow one request through gateway → stage queues →
//! RPC hops → reply, nor show what happened in the moments before a
//! timeout. This crate provides:
//!
//! * [`Tracer`] — a per-run recorder of flat [`SpanEvent`] records in
//!   simulation time. Head sampling is deterministic (a hash of the
//!   request id and the run seed), so identical seeds produce
//!   byte-identical traces. With tracing disabled the hot path is a
//!   single branch on [`Tracer::enabled`].
//! * A **flight recorder** — a fixed-size ring of the most recent events
//!   per server, snapshotted into a [`FlightDump`] when a request times
//!   out, is shed, or a server fails, annotated with the trigger.
//! * **Exporters** ([`export`]) — Chrome trace-event JSON (openable in
//!   Perfetto or `chrome://tracing`, one track per server × stage) and a
//!   JSONL span dump, plus a per-hop latency decomposition
//!   ([`export::decompose`]) that cross-checks the runtime's independent
//!   `Breakdown` accounting.
//! * A minimal JSON parser and Chrome-trace validator ([`json`]) used by
//!   tests and the `check_trace` CI binary.
//!
//! The runtime records per-server timeline samples (queue depth, thread
//! allocation, CPU utilization per bin) into [`Tracer::timeline`]; the
//! Chrome exporter turns them into counter tracks so thread-controller
//! decisions can be visually correlated with queue buildup.

pub mod export;
pub mod json;
pub mod span;
pub mod tracer;

pub use export::{chrome_trace, decompose, flight_json, parse_spans_jsonl, spans_jsonl};
pub use json::{parse_json, validate_chrome_trace, ChromeTraceStats, Json};
pub use span::{HopKind, SpanEvent, NO_SERVER, NO_STAGE, PROC_LABEL, QUEUE_LABEL};
pub use tracer::{FlightDump, TraceConfig, Tracer};
