//! Asynchronous consistent snapshots of the actor graph, with stateful
//! crash recovery.
//!
//! The runtime gives each stateful actor a versioned [`StateCell`]: a
//! monotone transition counter plus a value that is a deterministic fold
//! of every write applied so far. Writes are journaled to a durable
//! [`SnapshotStore`] (a write-ahead log) the moment they execute;
//! snapshot rounds — coordinator-initiated marker rounds in the
//! Chandy-Lamport style, captured lazily on the first post-marker write
//! so service is never stalled — periodically checkpoint each actor's
//! state and truncate its journal, bounding replay length. On a crash,
//! re-placed actors rehydrate from the last *complete* round plus a
//! journal replay cursor; because the journal is durable, recovery loses
//! and duplicates exactly zero state transitions (the invariant
//! `actop-verify` checks over the trace).
//!
//! This crate is backend-agnostic plumbing: the store, the cells, the
//! round bookkeeping, and the per-link marker-sequencing accounting. The
//! engine wiring (marker events, lazy capture hooks, restore latency)
//! lives with each backend in `actop-runtime`.

use actop_sim::{mix64, Nanos};
use actop_sketch::{FxHashMap, FxHashSet};

/// Snapshot/restore tuning. `None` on the runtime config (the default)
/// disables the whole subsystem and keeps every hook at a single branch,
/// so snapshot-off runs stay byte-identical to builds without it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotConfig {
    /// Sim-time between coordinator-initiated snapshot rounds.
    pub interval: Nanos,
    /// How long a round stays open for lazy captures before the sweep
    /// captures the untouched remainder and commits. Must be shorter than
    /// `interval` so rounds never overlap.
    pub capture_window: Nanos,
    /// Bitmask of application tags that mutate actor state: bit `t` set
    /// means requests with `tag == t` advance the target's state cell.
    /// Tags ≥ 64 never mutate state. Must be disjoint from
    /// `ReplicationConfig::read_tags` when both subsystems are on.
    pub write_tags: u64,
    /// Serialized size of one actor's captured state, bytes (drives the
    /// bytes-captured counters).
    pub state_bytes: u64,
    /// CPU cost added to the write that lazily captures an actor's
    /// pre-write state into an open round.
    pub capture_cpu_ns: f64,
    /// CPU cost added to every state write for the durable journal
    /// append (the WAL tax).
    pub journal_cpu_ns: f64,
    /// Blocking time for a restore's snapshot fetch from the store.
    pub restore_base_ns: u64,
    /// Blocking time per journal entry replayed on top of the snapshot.
    pub restore_per_entry_ns: u64,
    /// Server hosting the snapshot store; also the round coordinator.
    /// The store's *data* is durable (it survives the server's crash),
    /// but while the server is down restores defer with backoff and new
    /// rounds are skipped.
    pub store_server: u32,
    /// First restore-deferral backoff when the store server is down;
    /// attempt `k` waits `base << (k-1)`, capped by `max_restore_backoff`.
    /// Deterministic — no jitter, no RNG draws.
    pub restore_backoff: Nanos,
    /// Restore-deferral backoff cap.
    pub max_restore_backoff: Nanos,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            interval: Nanos::from_secs(2),
            capture_window: Nanos::from_millis(500),
            // Tag 1 is the write tag in both the Halo workload (TAG_POLL:
            // the game actor advances its roster) and the scale workload
            // (TAG_WRITE) — and is disjoint from the default replication
            // read mask (0b1).
            write_tags: 0b10,
            state_bytes: 256,
            capture_cpu_ns: 2_000.0,
            journal_cpu_ns: 400.0,
            restore_base_ns: 200_000,
            restore_per_entry_ns: 2_000,
            store_server: 0,
            restore_backoff: Nanos::from_millis(2),
            max_restore_backoff: Nanos::from_millis(64),
        }
    }
}

impl SnapshotConfig {
    /// True if requests with this tag mutate actor state.
    #[inline]
    pub fn is_write(&self, tag: u64) -> bool {
        tag < 64 && (self.write_tags >> tag) & 1 == 1
    }

    /// Deterministic deferral backoff for restore attempt `attempts`
    /// (1-based), exponential and capped. No jitter: deferral timing must
    /// be identical across engine backends and shard layouts.
    pub fn defer_backoff(&self, attempts: u32) -> Nanos {
        let shift = attempts.saturating_sub(1).min(20);
        Nanos::from_nanos(
            self.restore_backoff
                .as_nanos()
                .saturating_mul(1u64 << shift),
        )
        .min(self.max_restore_backoff)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate settings (configurations are build-time
    /// inputs, not runtime data).
    pub fn validate(&self, servers: usize) {
        assert!(self.interval > Nanos::ZERO, "need a snapshot interval");
        assert!(
            Nanos::ZERO < self.capture_window && self.capture_window < self.interval,
            "capture window must fit inside the round interval"
        );
        assert!(self.write_tags != 0, "a snapshot run needs write tags");
        assert!(
            (self.store_server as usize) < servers,
            "store server out of range"
        );
        assert!(self.capture_cpu_ns >= 0.0 && self.journal_cpu_ns >= 0.0);
        assert!(
            self.restore_backoff > Nanos::ZERO && self.max_restore_backoff >= self.restore_backoff,
            "restore backoff must be positive and capped above the base"
        );
    }
}

/// One actor's in-memory durable state: a monotone transition counter and
/// a value that deterministically folds every applied write. Identical
/// write sequences produce identical cells, which is what lets the
/// verifier equate "same version" with "same state".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateCell {
    /// Number of writes applied so far (version 0 = never written).
    pub version: u64,
    /// Deterministic fold of the applied writes.
    pub value: u64,
}

impl StateCell {
    /// Applies one write for `actor`, returning the new version.
    #[inline]
    pub fn apply_write(&mut self, actor: u64) -> u64 {
        self.version += 1;
        self.value = mix64(self.value ^ actor.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.version);
        self.version
    }
}

/// One durable journal entry: the cell contents after a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    pub version: u64,
    pub value: u64,
}

/// A committed per-actor snapshot record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapRecord {
    /// The round that captured it (rounds are numbered from 1).
    pub round: u64,
    pub version: u64,
    pub value: u64,
}

/// The outcome of a restore: the state to rehydrate and how much journal
/// had to be replayed on top of the snapshot (the recovery-cost driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestorePlan {
    /// The complete round the snapshot came from (0 = journal-only
    /// restore; the actor had writes but no committed snapshot yet).
    pub round: u64,
    pub version: u64,
    pub value: u64,
    /// Journal entries replayed past the snapshot.
    pub replayed: u64,
}

/// The durable snapshot store: per-actor write-ahead journals plus the
/// latest complete per-actor snapshot. The store's contents survive its
/// host server's crash (stable storage); only *access* is lost while the
/// host is down.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    journals: FxHashMap<u64, Vec<JournalEntry>>,
    latest: FxHashMap<u64, SnapRecord>,
    /// Rounds committed as complete, for restore-source validation.
    complete_rounds: Vec<u64>,
}

impl SnapshotStore {
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Appends one write to an actor's durable journal (the WAL step —
    /// happens at write time, unconditionally, which is what makes
    /// recovery exact).
    pub fn append(&mut self, actor: u64, version: u64, value: u64) {
        self.journals
            .entry(actor)
            .or_default()
            .push(JournalEntry { version, value });
    }

    /// Current journal length for an actor (the replay debt a crash of
    /// its host would incur right now).
    pub fn journal_len(&self, actor: u64) -> u64 {
        self.journals.get(&actor).map_or(0, |j| j.len() as u64)
    }

    /// Total journal entries across all actors.
    pub fn total_journal_len(&self) -> u64 {
        self.journals.values().map(|j| j.len() as u64).sum()
    }

    /// Sum of the highest durable version across every actor the store
    /// knows. Versions are per-actor write counters, so this equals the
    /// total number of writes the store can reconstruct — compare with
    /// the cluster's `state_writes` counter to measure state loss (the
    /// WAL makes the difference zero by construction).
    pub fn total_durable_versions(&self) -> u64 {
        let mut actors: FxHashSet<u64> = self.journals.keys().copied().collect();
        actors.extend(self.latest.keys().copied());
        actors
            .into_iter()
            .map(|a| self.restore(a).map_or(0, |p| p.version))
            .sum()
    }

    /// Commits a complete round: each captured actor's snapshot becomes
    /// its restore base and its journal is truncated up to the captured
    /// version. `captures` must be sorted by actor (callers capture in
    /// sorted order for determinism).
    pub fn commit(&mut self, round: u64, captures: &[(u64, u64, u64)]) {
        for &(actor, version, value) in captures {
            self.latest.insert(
                actor,
                SnapRecord {
                    round,
                    version,
                    value,
                },
            );
            if let Some(journal) = self.journals.get_mut(&actor) {
                journal.retain(|e| e.version > version);
                if journal.is_empty() {
                    self.journals.remove(&actor);
                }
            }
        }
        self.complete_rounds.push(round);
    }

    /// Whether a round committed as complete (a legal restore source).
    pub fn round_complete(&self, round: u64) -> bool {
        self.complete_rounds.contains(&round)
    }

    /// Rounds committed as complete, in commit order.
    pub fn complete_rounds(&self) -> &[u64] {
        &self.complete_rounds
    }

    /// The restore plan for an actor: its latest complete snapshot plus a
    /// replay of every journaled write past it. `None` when the store has
    /// nothing for the actor (a fresh actor — no restore needed).
    pub fn restore(&self, actor: u64) -> Option<RestorePlan> {
        let base = self.latest.get(&actor);
        let journal = self.journals.get(&actor);
        let (round, mut version, mut value) = match base {
            Some(rec) => (rec.round, rec.version, rec.value),
            None => (0, 0, 0),
        };
        let mut replayed = 0u64;
        if let Some(entries) = journal {
            for e in entries {
                if e.version > version {
                    version = e.version;
                    value = e.value;
                    replayed += 1;
                }
            }
        }
        if base.is_none() && replayed == 0 {
            return None;
        }
        Some(RestorePlan {
            round,
            version,
            value,
            replayed,
        })
    }
}

/// An in-progress snapshot round: which servers have processed the
/// marker, what has been captured so far, and the per-link send/receive
/// sequence snapshots taken at marker time (the in-flight accounting).
#[derive(Debug)]
pub struct OpenRound {
    /// Round id (numbered from 1).
    pub id: u64,
    /// When the coordinator began the round.
    pub begun_at: Nanos,
    /// Per-server: marker processed (part of the cut).
    pub marked: Vec<bool>,
    /// Captured pre-marker state per actor: `(version, value)`.
    pub captured: FxHashMap<u64, (u64, u64)>,
    /// Bytes captured so far.
    pub bytes: u64,
    /// `sent[src * n + dst]` snapshot taken at `src`'s marker.
    pub sent_at_marker: Vec<u64>,
    /// `recv[src * n + dst]` snapshot taken at `dst`'s marker.
    pub recv_at_marker: Vec<u64>,
}

impl OpenRound {
    pub fn new(id: u64, begun_at: Nanos, servers: usize) -> Self {
        OpenRound {
            id,
            begun_at,
            marked: vec![false; servers],
            captured: FxHashMap::default(),
            bytes: 0,
            sent_at_marker: vec![0; servers * servers],
            recv_at_marker: vec![0; servers * servers],
        }
    }

    /// Records `server`'s marker: snapshot its outbound send counters and
    /// inbound receive counters (per-link marker sequencing). Returns
    /// false if the server was already marked.
    pub fn mark(&mut self, server: usize, sent: &[u64], recv: &[u64]) -> bool {
        if self.marked[server] {
            return false;
        }
        self.marked[server] = true;
        let n = self.marked.len();
        for dst in 0..n {
            self.sent_at_marker[server * n + dst] = sent[server * n + dst];
        }
        for src in 0..n {
            self.recv_at_marker[src * n + server] = recv[src * n + server];
        }
        true
    }

    /// Messages in flight across the cut: per link, sends recorded before
    /// the source's marker minus receives recorded before the
    /// destination's marker (clamped — markers are not FIFO-ordered
    /// against data messages in this model).
    pub fn in_flight(&self) -> u64 {
        self.sent_at_marker
            .iter()
            .zip(&self.recv_at_marker)
            .map(|(&s, &r)| s.saturating_sub(r))
            .sum()
    }

    /// Captures an actor's pre-write state into the round (idempotent:
    /// the first capture wins, later calls are ignored). Returns true if
    /// this call captured.
    pub fn capture(&mut self, actor: u64, version: u64, value: u64, state_bytes: u64) -> bool {
        if self.captured.contains_key(&actor) {
            return false;
        }
        self.captured.insert(actor, (version, value));
        self.bytes += state_bytes;
        true
    }

    /// The round's captures sorted by actor id (the deterministic commit
    /// order).
    pub fn sorted_captures(&self) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = self
            .captured
            .iter()
            .map(|(&a, &(ver, val))| (a, ver, val))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = SnapshotConfig::default();
        cfg.validate(4);
        assert!(cfg.is_write(1));
        assert!(!cfg.is_write(0));
        assert!(!cfg.is_write(64));
        assert!(!cfg.is_write(200));
    }

    #[test]
    #[should_panic(expected = "capture window")]
    fn rejects_capture_window_wider_than_interval() {
        let cfg = SnapshotConfig {
            capture_window: Nanos::from_secs(3),
            ..SnapshotConfig::default()
        };
        cfg.validate(4);
    }

    #[test]
    fn defer_backoff_doubles_and_caps() {
        let cfg = SnapshotConfig::default();
        assert_eq!(cfg.defer_backoff(1), Nanos::from_millis(2));
        assert_eq!(cfg.defer_backoff(2), Nanos::from_millis(4));
        assert_eq!(cfg.defer_backoff(3), Nanos::from_millis(8));
        assert_eq!(cfg.defer_backoff(40), Nanos::from_millis(64), "capped");
    }

    #[test]
    fn cells_fold_deterministically() {
        let mut a = StateCell::default();
        let mut b = StateCell::default();
        for _ in 0..5 {
            a.apply_write(7);
            b.apply_write(7);
        }
        assert_eq!(a, b);
        assert_eq!(a.version, 5);
        let mut c = StateCell::default();
        c.apply_write(8);
        assert_ne!(a.value, c.value, "the fold depends on the actor id");
    }

    #[test]
    fn restore_is_snapshot_plus_replay() {
        let mut store = SnapshotStore::new();
        let mut cell = StateCell::default();
        // Three writes journaled, then a snapshot capturing version 2.
        let snap_at_2 = {
            let mut scratch = StateCell::default();
            scratch.apply_write(9);
            scratch.apply_write(9);
            scratch
        };
        for _ in 0..3 {
            let v = cell.apply_write(9);
            store.append(9, v, cell.value);
        }
        store.commit(1, &[(9, snap_at_2.version, snap_at_2.value)]);
        assert!(store.round_complete(1));
        assert_eq!(store.journal_len(9), 1, "entries ≤ v2 truncated");
        let plan = store.restore(9).expect("state exists");
        assert_eq!(plan.round, 1);
        assert_eq!(plan.version, 3);
        assert_eq!(plan.value, cell.value, "replay reproduces the cell");
        assert_eq!(plan.replayed, 1);
    }

    #[test]
    fn journal_only_restore_replays_everything() {
        let mut store = SnapshotStore::new();
        let mut cell = StateCell::default();
        for _ in 0..4 {
            let v = cell.apply_write(3);
            store.append(3, v, cell.value);
        }
        let plan = store.restore(3).expect("journaled");
        assert_eq!(plan.round, 0, "no snapshot yet");
        assert_eq!(plan.version, 4);
        assert_eq!(plan.replayed, 4);
        assert_eq!(store.restore(99), None, "fresh actor: nothing to restore");
    }

    #[test]
    fn round_marks_once_and_accounts_in_flight() {
        let n = 3;
        let mut round = OpenRound::new(1, Nanos::ZERO, n);
        let mut sent = vec![0u64; n * n];
        let mut recv = vec![0u64; n * n];
        // Link 0 -> 1: three sent, one received before the markers.
        sent[1] = 3;
        recv[1] = 1;
        assert!(round.mark(0, &sent, &recv));
        assert!(!round.mark(0, &sent, &recv), "second marker is a no-op");
        assert!(round.mark(1, &sent, &recv));
        assert_eq!(round.in_flight(), 2);
    }

    #[test]
    fn capture_is_first_write_wins() {
        let mut round = OpenRound::new(2, Nanos::ZERO, 2);
        assert!(round.capture(5, 7, 0xAB, 100));
        assert!(!round.capture(5, 8, 0xCD, 100), "already captured");
        assert_eq!(round.bytes, 100);
        assert_eq!(round.sorted_captures(), vec![(5, 7, 0xAB)]);
    }

    #[test]
    fn commit_clears_empty_journals() {
        let mut store = SnapshotStore::new();
        store.append(1, 1, 10);
        store.commit(1, &[(1, 1, 10)]);
        assert_eq!(store.journal_len(1), 0);
        assert_eq!(store.total_journal_len(), 0);
        let plan = store.restore(1).expect("snapshot remains");
        assert_eq!(plan.replayed, 0);
        assert_eq!(plan.version, 1);
    }
}
