//! A vendored FxHash-style hasher and map/set aliases for the hot paths.
//!
//! The runtime's per-message path performs several map lookups (actor
//! directory, call tables, sketch index, location hints). `std`'s default
//! SipHash-1-3 is keyed and DoS-resistant but costs tens of cycles per
//! lookup; none of these maps face attacker-controlled keys, so every
//! *non-semantic* map — one whose hasher can change without changing any
//! observable output — uses this 64-bit multiply-mix hasher instead
//! (the same construction as rustc's `FxHasher`, vendored here because
//! the build environment is fully offline, matching the `vendor/`
//! precedent).
//!
//! A map is non-semantic when its iteration order is never observed:
//! either it is only read through point lookups, or every iteration is
//! sorted before use. Semantic hashes — e.g. the `PlacementPolicy::Hash`
//! placement decision in `actop-runtime` — must keep their original
//! hasher, since changing them changes placement decisions and therefore
//! replay output.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant: `2^64 / phi`, the same constant rustc's
/// FxHasher uses. Odd, so multiplication is a bijection on `u64`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each mix, spreading low-entropy input bits
/// (sequential ids) across the word.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, non-keyed hasher: `rotl(h, 5) ^ word`
/// followed by a multiply, per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` is free).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// on non-semantic maps (see module docs).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] with space for `cap` entries (the `HashMap`
/// inherent constructor cannot be used with a non-default hasher without
/// naming it at every call site).
#[inline]
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(12345u64), hash_of(12345u64));
        assert_eq!(hash_of((1u64, 2u64)), hash_of((1u64, 2u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential ids (the common key shape) must not collide or
        // cluster into the same low bits.
        let hashes: Vec<u64> = (0u64..64).map(hash_of).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j]);
            }
        }
        let low_bits: std::collections::HashSet<u64> = hashes.iter().map(|h| h & 0x3f).collect();
        assert!(low_bits.len() > 32, "low bits too clustered: {low_bits:?}");
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        let sized: FxHashMap<u32, u32> = fx_map_with_capacity(100);
        assert!(sized.capacity() >= 100);
    }

    #[test]
    fn byte_stream_tail_handling() {
        // write() must mix trailing bytes (< 8) too.
        let mut a = FxHasher::default();
        a.write(b"abcdefghi");
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
