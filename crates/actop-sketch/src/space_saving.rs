//! The Space-Saving heavy-hitter sketch with weighted updates.
//!
//! The sketch monitors at most `capacity` items. An update to a monitored
//! item increments its counter; an update to an unmonitored item evicts the
//! item with the smallest counter and inherits that counter as the new
//! item's overestimation error. Two classic guarantees follow (and are
//! enforced by this module's property tests):
//!
//! 1. `estimate >= true_count >= estimate - error` for every monitored item;
//! 2. every item with true count greater than `total_weight / capacity` is
//!    monitored.
//!
//! A [`SpaceSaving::scale`] operation ages all counters multiplicatively so
//! the partitioner tracks the *recent* communication graph rather than its
//! full history — the property that matters for rapidly changing graphs.
//!
//! # Hot-path design
//!
//! `offer` runs twice per actor-to-actor message in the runtime, so its
//! common cases must be allocation-free and O(1):
//!
//! * **Monitored hit** (the overwhelming majority once the sketch warms
//!   up): one [`FxHashMap`] lookup and a counter increment. Nothing else —
//!   min-tracking is *lazy*, so increments never touch it.
//! * **Eviction**: the minimum is tracked by a cached lower bound
//!   `min_count` plus a queue of candidate slots collected in slot order.
//!   Candidates whose counter has grown past `min_count` are skipped at
//!   pop time; when the queue runs dry the true minimum has risen and one
//!   O(capacity) rescan refills it. Each rescan collects *every* slot at
//!   the new minimum, so heavy-tailed streams (many slots at the minimum)
//!   amortize the scan across many evictions. The queue buffer is reused
//!   across rescans — steady-state eviction allocates nothing.
//!
//! The eviction *choice* — smallest count, then smallest slot index —
//! is identical to the previous `BTreeSet<(count, slot)>` implementation,
//! so replay output is bit-for-bit unchanged; the differential property
//! test in `tests/space_saving_props.rs` holds the two implementations
//! together.

use std::hash::Hash;

use crate::fxmap::FxHashMap;

/// A monitored item with its estimated weight and overestimation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchEntry<T> {
    /// The monitored item.
    pub item: T,
    /// Estimated total weight (an overestimate).
    pub count: u64,
    /// Maximum overestimation: the true weight is at least `count - error`.
    pub error: u64,
}

/// Weighted Space-Saving sketch over items of type `T`.
///
/// # Examples
///
/// ```
/// use actop_sketch::SpaceSaving;
///
/// let mut sketch = SpaceSaving::new(2);
/// sketch.offer("a", 10);
/// sketch.offer("b", 5);
/// sketch.offer("c", 1); // evicts "b" (smallest), inherits its count
/// assert!(sketch.estimate(&"a").is_some());
/// assert_eq!(sketch.top_k(1)[0].item, "a");
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving<T> {
    capacity: usize,
    slots: Vec<SketchEntry<T>>,
    index: FxHashMap<T, usize>,
    /// Lower bound on the minimum counter; exact whenever `min_queue`
    /// holds a slot whose counter still equals it.
    min_count: u64,
    /// Slot indices that had `count == min_count` at the last rescan, in
    /// ascending slot order. Consumed front-to-back via `min_cursor`;
    /// stale entries (counter since grown) are skipped at pop time.
    min_queue: Vec<usize>,
    /// Read position in `min_queue`.
    min_cursor: usize,
    total_weight: u64,
}

impl<T: Eq + Hash + Clone> SpaceSaving<T> {
    /// Creates a sketch monitoring at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch capacity must be positive");
        SpaceSaving {
            capacity,
            slots: Vec::with_capacity(capacity.min(4096)),
            index: FxHashMap::default(),
            min_count: 0,
            min_queue: Vec::new(),
            min_cursor: 0,
            total_weight: 0,
        }
    }

    /// Maximum number of monitored items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently monitored items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total weight offered so far (after any [`SpaceSaving::scale`]).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Invalidates the cached minimum; the next eviction rescans.
    #[inline]
    fn invalidate_min(&mut self) {
        self.min_count = 0;
        self.min_queue.clear();
        self.min_cursor = 0;
    }

    /// The slot holding the minimum counter, breaking ties toward the
    /// smallest slot index (the same order the old `BTreeSet<(count,
    /// slot)>` structure produced). Amortized O(1); O(capacity) when the
    /// candidate queue must be rebuilt.
    fn take_min_slot(&mut self) -> (u64, usize) {
        loop {
            while self.min_cursor < self.min_queue.len() {
                let slot = self.min_queue[self.min_cursor];
                self.min_cursor += 1;
                // Counters only grow between rescans, so a candidate is
                // either still exactly at the cached minimum or stale.
                if self.slots[slot].count == self.min_count {
                    return (self.min_count, slot);
                }
            }
            // Queue exhausted: the true minimum rose. Rescan, collecting
            // every slot at the new minimum in ascending slot order.
            let min = self
                .slots
                .iter()
                .map(|e| e.count)
                .min()
                .expect("take_min_slot on empty sketch");
            self.min_count = min;
            self.min_queue.clear();
            self.min_cursor = 0;
            for (slot, entry) in self.slots.iter().enumerate() {
                if entry.count == min {
                    self.min_queue.push(slot);
                }
            }
        }
    }

    /// Offers `weight` units of the item to the stream.
    #[inline]
    pub fn offer(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total_weight += weight;
        if let Some(&slot) = self.index.get(&item) {
            // Monitored hit: pure increment. Min-tracking is lazy — if
            // this slot sits in the candidate queue it becomes stale and
            // is skipped at the next eviction.
            self.slots[slot].count += weight;
            return;
        }
        self.offer_slow(item, weight);
    }

    /// The unmonitored-item path: fill a free slot or evict the minimum.
    fn offer_slow(&mut self, item: T, weight: u64) {
        if self.slots.len() < self.capacity {
            // A fresh slot may undercut the cached minimum; drop the
            // cache rather than splice the new slot into the queue.
            self.invalidate_min();
            let slot = self.slots.len();
            self.slots.push(SketchEntry {
                item: item.clone(),
                count: weight,
                error: 0,
            });
            self.index.insert(item, slot);
            return;
        }
        // Evict the minimum-count item; the newcomer inherits its count as
        // overestimation error.
        let (min_count, slot) = self.take_min_slot();
        let evicted = std::mem::replace(
            &mut self.slots[slot],
            SketchEntry {
                item: item.clone(),
                count: min_count + weight,
                error: min_count,
            },
        );
        self.index.remove(&evicted.item);
        self.index.insert(item, slot);
    }

    /// Estimated weight and error bound for an item, if monitored.
    pub fn estimate(&self, item: &T) -> Option<(u64, u64)> {
        self.index
            .get(item)
            .map(|&slot| (self.slots[slot].count, self.slots[slot].error))
    }

    /// Guaranteed lower bound on the item's true weight (0 if unmonitored).
    pub fn lower_bound(&self, item: &T) -> u64 {
        self.estimate(item).map(|(c, e)| c - e).unwrap_or(0)
    }

    /// Iterates over the monitored entries without cloning or sorting, in
    /// slot order (deterministic; *not* sorted by count). This is the
    /// hot-path accessor — `Cluster::partition_view` consumes it and
    /// applies its own actor-order sort.
    pub fn iter_entries(&self) -> impl Iterator<Item = &SketchEntry<T>> {
        self.slots.iter()
    }

    /// All monitored entries, sorted by descending estimated count (ties by
    /// slot order, deterministically). Allocates; prefer
    /// [`SpaceSaving::iter_entries`] on hot paths.
    pub fn entries(&self) -> Vec<SketchEntry<T>> {
        let mut out: Vec<SketchEntry<T>> = self.slots.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.count));
        out
    }

    /// The `k` heaviest monitored entries.
    pub fn top_k(&self, k: usize) -> Vec<SketchEntry<T>> {
        let mut out = self.entries();
        out.truncate(k);
        out
    }

    /// Monitored entries whose *guaranteed* weight (`count - error`)
    /// reaches `min_count`, in slot order (deterministic). Using the lower
    /// bound instead of the estimate means an item only qualifies once its
    /// own observed mass — not inherited eviction error — clears the bar,
    /// which is the right test for irreversible decisions like splitting a
    /// hot actor.
    pub fn sustained_heavy_hitters(&self, min_count: u64) -> impl Iterator<Item = &SketchEntry<T>> {
        self.slots
            .iter()
            .filter(move |e| e.count - e.error >= min_count)
    }

    /// Multiplies every counter (and error) by `factor` in `[0, 1]`,
    /// dropping entries that reach zero. Periodic scaling makes the sketch
    /// track the recent stream — essential for rapidly changing
    /// communication graphs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `[0, 1]`.
    pub fn scale(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "scale factor must be in [0,1], got {factor}"
        );
        let old = std::mem::take(&mut self.slots);
        self.index.clear();
        self.invalidate_min();
        self.total_weight = (self.total_weight as f64 * factor) as u64;
        for entry in old {
            let count = (entry.count as f64 * factor) as u64;
            if count == 0 {
                continue;
            }
            let error = (entry.error as f64 * factor) as u64;
            let slot = self.slots.len();
            self.index.insert(entry.item.clone(), slot);
            self.slots.push(SketchEntry {
                item: entry.item,
                count,
                error,
            });
        }
    }

    /// Removes an item from the sketch (e.g. after the corresponding actor
    /// migrated away). No-op if the item is not monitored.
    pub fn remove(&mut self, item: &T) {
        let Some(slot) = self.index.remove(item) else {
            return;
        };
        let last = self.slots.len() - 1;
        if slot != last {
            // Move the last entry into the vacated slot and fix the index.
            self.slots.swap(slot, last);
            self.index.insert(self.slots[slot].item.clone(), slot);
        }
        self.slots.pop();
        // Queued candidates now point at moved/removed slots.
        self.invalidate_min();
    }

    /// Keeps only the entries whose item satisfies the predicate (e.g.
    /// drop every edge of an actor that migrated away). O(capacity).
    pub fn retain(&mut self, mut pred: impl FnMut(&T) -> bool) {
        let old = std::mem::take(&mut self.slots);
        self.index.clear();
        self.invalidate_min();
        for entry in old {
            if !pred(&entry.item) {
                continue;
            }
            let slot = self.slots.len();
            self.index.insert(entry.item.clone(), slot);
            self.slots.push(entry);
        }
    }

    /// Drops all state.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.invalidate_min();
        self.total_weight = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(10);
        s.offer("a", 3);
        s.offer("b", 5);
        s.offer("a", 2);
        assert_eq!(s.estimate(&"a"), Some((5, 0)));
        assert_eq!(s.estimate(&"b"), Some((5, 0)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_weight(), 10);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut s = SpaceSaving::new(2);
        s.offer("a", 10);
        s.offer("b", 4);
        s.offer("c", 1);
        // "b" had the min count 4; "c" inherits it: count 5, error 4.
        assert_eq!(s.estimate(&"b"), None);
        assert_eq!(s.estimate(&"c"), Some((5, 4)));
        assert_eq!(s.lower_bound(&"c"), 1);
        assert_eq!(s.lower_bound(&"a"), 10);
    }

    #[test]
    fn eviction_ties_break_toward_lowest_slot() {
        // Three slots all at count 2: evictions must consume slots 0, 1, 2
        // in that order (the old BTreeSet<(count, slot)> order).
        let mut s = SpaceSaving::new(3);
        s.offer("a", 2);
        s.offer("b", 2);
        s.offer("c", 2);
        s.offer("x", 1); // evicts "a" (slot 0) -> slot 0 now count 3
        assert_eq!(s.estimate(&"a"), None);
        assert_eq!(s.estimate(&"x"), Some((3, 2)));
        s.offer("y", 1); // evicts "b" (slot 1)
        assert_eq!(s.estimate(&"b"), None);
        assert_eq!(s.estimate(&"y"), Some((3, 2)));
        s.offer("z", 1); // evicts "c" (slot 2)
        assert_eq!(s.estimate(&"c"), None);
        assert_eq!(s.estimate(&"z"), Some((3, 2)));
    }

    #[test]
    fn stale_min_candidates_are_skipped() {
        let mut s = SpaceSaving::new(3);
        s.offer("a", 1);
        s.offer("b", 1);
        s.offer("c", 1);
        s.offer("d", 1); // rescan: queue = [0,1,2]; evicts slot 0 ("a")
        assert_eq!(s.estimate(&"a"), None);
        // Grow slot 1 past the cached min; the queued candidate goes stale.
        s.offer("b", 10);
        s.offer("e", 1); // must skip stale slot 1 and evict slot 2 ("c")
        assert_eq!(s.estimate(&"c"), None);
        assert_eq!(s.estimate(&"b"), Some((11, 0)));
        assert_eq!(s.estimate(&"e"), Some((2, 1)));
    }

    #[test]
    fn fresh_insert_after_remove_resets_min() {
        let mut s = SpaceSaving::new(2);
        s.offer("a", 10);
        s.offer("b", 10);
        s.offer("c", 1); // evicts "a"; min cache now thinks min_count=10
        assert_eq!(s.estimate(&"a"), None);
        s.remove(&"b");
        s.offer("d", 1); // fresh slot at count 1 (below stale cache)
        s.offer("e", 5); // must evict "d" (count 1), NOT "c" (count 11)
        assert_eq!(s.estimate(&"d"), None);
        assert_eq!(s.estimate(&"e"), Some((6, 1)));
        assert!(s.estimate(&"c").is_some());
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut s = SpaceSaving::new(2);
        s.offer("a", 0);
        assert!(s.is_empty());
        assert_eq!(s.total_weight(), 0);
    }

    #[test]
    fn top_k_sorted_desc() {
        let mut s = SpaceSaving::new(8);
        for (item, w) in [("a", 5), ("b", 9), ("c", 2), ("d", 7)] {
            s.offer(item, w);
        }
        let top = s.top_k(3);
        assert_eq!(
            top.iter().map(|e| e.item).collect::<Vec<_>>(),
            vec!["b", "d", "a"]
        );
    }

    #[test]
    fn iter_entries_is_slot_ordered_and_complete() {
        let mut s = SpaceSaving::new(8);
        for (item, w) in [("a", 5), ("b", 9), ("c", 2)] {
            s.offer(item, w);
        }
        let items: Vec<&str> = s.iter_entries().map(|e| e.item).collect();
        assert_eq!(items, vec!["a", "b", "c"]);
        let total: u64 = s.iter_entries().map(|e| e.count).sum();
        assert_eq!(total, s.total_weight());
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        // One heavy item plus a stream of distinct light items; the heavy
        // item must remain monitored with a tight estimate.
        let mut s = SpaceSaving::new(50);
        for i in 0..10_000u64 {
            s.offer(format!("light-{i}"), 1);
            if i % 10 == 0 {
                s.offer("heavy".to_string(), 10);
            }
        }
        let (count, error) = s.estimate(&"heavy".to_string()).expect("monitored");
        let true_count = 10_000;
        assert!(count >= true_count, "estimate {count} >= true {true_count}");
        assert!(count - error <= true_count);
    }

    #[test]
    fn count_conservation() {
        // Sum of monitored counts equals total stream weight when every
        // update either increments a counter or inherits one.
        let mut s = SpaceSaving::new(4);
        let stream = [("a", 3), ("b", 1), ("c", 2), ("d", 5), ("e", 1), ("a", 2)];
        let total: u64 = stream.iter().map(|&(_, w)| w).sum();
        for (item, w) in stream {
            s.offer(item, w);
        }
        let sum: u64 = s.entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, total);
        assert_eq!(s.total_weight(), total);
    }

    #[test]
    fn scale_ages_counts() {
        let mut s = SpaceSaving::new(4);
        s.offer("a", 100);
        s.offer("b", 1);
        s.scale(0.5);
        assert_eq!(s.estimate(&"a"), Some((50, 0)));
        // "b" scaled to 0 and was dropped.
        assert_eq!(s.estimate(&"b"), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_weight(), 50);
    }

    #[test]
    fn remove_keeps_structure_consistent() {
        let mut s = SpaceSaving::new(4);
        for (item, w) in [("a", 5), ("b", 9), ("c", 2)] {
            s.offer(item, w);
        }
        s.remove(&"b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.estimate(&"b"), None);
        // Remaining items intact and still updatable.
        s.offer("a", 1);
        assert_eq!(s.estimate(&"a"), Some((6, 0)));
        s.remove(&"zzz"); // no-op
        assert_eq!(s.len(), 2);
        // Eviction still works after removal.
        s.offer("d", 1);
        s.offer("e", 1);
        s.offer("f", 100);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn clear_resets() {
        let mut s = SpaceSaving::new(2);
        s.offer("a", 5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.total_weight(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: SpaceSaving<u32> = SpaceSaving::new(0);
    }

    #[test]
    fn sustained_heavy_hitters_use_lower_bound() {
        let mut s = SpaceSaving::new(2);
        s.offer("a", 100);
        s.offer("b", 5);
        // "c" evicts "b" and inherits its count as error: estimate 6,
        // lower bound 1 — not a sustained hitter at threshold 50.
        s.offer("c", 1);
        let hot: Vec<&str> = s.sustained_heavy_hitters(50).map(|e| e.item).collect();
        assert_eq!(hot, vec!["a"]);
        assert_eq!(s.sustained_heavy_hitters(101).count(), 0);
        // Threshold 0 admits every monitored entry.
        assert_eq!(s.sustained_heavy_hitters(0).count(), 2);
    }
}
