//! Stream sketches for edge sampling (§4.3 of the paper).
//!
//! The partitioner must not store the full actor-communication graph: with
//! millions of actors the per-server edge table would dominate memory and
//! the "light" edges would never influence migration decisions anyway. Each
//! server instead keeps only its heaviest edges, maintained online with the
//! Space-Saving algorithm (Metwally, Agrawal, El Abbadi — ICDT 2005) applied
//! to the stream of observed `(source actor, target actor, weight)`
//! messages.

pub mod fxmap;
pub mod space_saving;

pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use space_saving::{SketchEntry, SpaceSaving};
