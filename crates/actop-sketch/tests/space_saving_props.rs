//! Property tests for the Space-Saving sketch guarantees.

use std::collections::HashMap;

use actop_sketch::SpaceSaving;
use proptest::prelude::*;

/// Replays a stream into both the sketch and an exact counter.
fn replay(capacity: usize, stream: &[(u8, u8)]) -> (SpaceSaving<u8>, HashMap<u8, u64>) {
    let mut sketch = SpaceSaving::new(capacity);
    let mut exact: HashMap<u8, u64> = HashMap::new();
    for &(item, w) in stream {
        let w = w as u64;
        sketch.offer(item, w);
        if w > 0 {
            *exact.entry(item).or_default() += w;
        }
    }
    (sketch, exact)
}

proptest! {
    /// Guarantee 1: estimate >= true count >= estimate - error.
    #[test]
    fn estimates_bracket_true_counts(
        capacity in 1usize..20,
        stream in proptest::collection::vec((0u8..40, 0u8..10), 0..300),
    ) {
        let (sketch, exact) = replay(capacity, &stream);
        for entry in sketch.entries() {
            let true_count = exact.get(&entry.item).copied().unwrap_or(0);
            prop_assert!(
                entry.count >= true_count,
                "item {} estimate {} < true {}", entry.item, entry.count, true_count
            );
            prop_assert!(
                entry.count - entry.error <= true_count,
                "item {} lower bound {} > true {}",
                entry.item, entry.count - entry.error, true_count
            );
        }
    }

    /// Guarantee 2: any item heavier than total/capacity is monitored.
    #[test]
    fn heavy_hitters_are_monitored(
        capacity in 1usize..20,
        stream in proptest::collection::vec((0u8..40, 0u8..10), 0..300),
    ) {
        let (sketch, exact) = replay(capacity, &stream);
        let threshold = sketch.total_weight() / capacity as u64;
        for (&item, &count) in &exact {
            if count > threshold {
                prop_assert!(
                    sketch.estimate(&item).is_some(),
                    "heavy item {item} (count {count} > threshold {threshold}) evicted"
                );
            }
        }
    }

    /// Count conservation: monitored counts sum to the total stream weight.
    #[test]
    fn counts_are_conserved(
        capacity in 1usize..20,
        stream in proptest::collection::vec((0u8..40, 0u8..10), 0..300),
    ) {
        let (sketch, _) = replay(capacity, &stream);
        let sum: u64 = sketch.entries().iter().map(|e| e.count).sum();
        prop_assert_eq!(sum, sketch.total_weight());
    }

    /// The sketch never exceeds its capacity.
    #[test]
    fn capacity_is_respected(
        capacity in 1usize..8,
        stream in proptest::collection::vec((0u8..255, 1u8..5), 0..200),
    ) {
        let (sketch, _) = replay(capacity, &stream);
        prop_assert!(sketch.len() <= sketch.capacity());
    }

    /// Removing arbitrary items keeps the index consistent: every remaining
    /// entry is still queryable with the same estimate.
    #[test]
    fn removal_keeps_consistency(
        stream in proptest::collection::vec((0u8..20, 1u8..5), 0..100),
        removals in proptest::collection::vec(0u8..20, 0..10),
    ) {
        let (mut sketch, _) = replay(8, &stream);
        for item in &removals {
            sketch.remove(item);
        }
        for entry in sketch.entries() {
            prop_assert_eq!(
                sketch.estimate(&entry.item),
                Some((entry.count, entry.error))
            );
        }
    }
}
