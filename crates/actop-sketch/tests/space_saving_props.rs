//! Property tests for the Space-Saving sketch guarantees, plus a
//! differential test holding the lazy-min implementation bit-for-bit equal
//! to the original `BTreeSet<(count, slot)>` implementation it replaced.

use std::collections::HashMap;

use actop_sketch::SpaceSaving;
use proptest::prelude::*;

/// The pre-optimization Space-Saving implementation, kept verbatim as the
/// reference for the differential test below. Its `BTreeSet<(count, slot)>`
/// min-tracking defines the eviction order (smallest count, then smallest
/// slot index) that the lazy-min fast path must reproduce exactly —
/// eviction choices feed the partitioner and are replay-semantic.
mod reference {
    use std::collections::{BTreeSet, HashMap};
    use std::hash::Hash;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SketchEntry<T> {
        pub item: T,
        pub count: u64,
        pub error: u64,
    }

    #[derive(Debug, Clone)]
    pub struct SpaceSaving<T> {
        capacity: usize,
        slots: Vec<SketchEntry<T>>,
        index: HashMap<T, usize>,
        by_count: BTreeSet<(u64, usize)>,
        total_weight: u64,
    }

    impl<T: Eq + Hash + Clone> SpaceSaving<T> {
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "sketch capacity must be positive");
            SpaceSaving {
                capacity,
                slots: Vec::new(),
                index: HashMap::new(),
                by_count: BTreeSet::new(),
                total_weight: 0,
            }
        }

        pub fn total_weight(&self) -> u64 {
            self.total_weight
        }

        pub fn offer(&mut self, item: T, weight: u64) {
            if weight == 0 {
                return;
            }
            self.total_weight += weight;
            if let Some(&slot) = self.index.get(&item) {
                let old = self.slots[slot].count;
                self.by_count.remove(&(old, slot));
                self.slots[slot].count = old + weight;
                self.by_count.insert((old + weight, slot));
                return;
            }
            if self.slots.len() < self.capacity {
                let slot = self.slots.len();
                self.slots.push(SketchEntry {
                    item: item.clone(),
                    count: weight,
                    error: 0,
                });
                self.index.insert(item, slot);
                self.by_count.insert((weight, slot));
                return;
            }
            let &(min_count, slot) = self.by_count.iter().next().expect("sketch full");
            self.by_count.remove(&(min_count, slot));
            let evicted = std::mem::replace(
                &mut self.slots[slot],
                SketchEntry {
                    item: item.clone(),
                    count: min_count + weight,
                    error: min_count,
                },
            );
            self.index.remove(&evicted.item);
            self.index.insert(item, slot);
            self.by_count.insert((min_count + weight, slot));
        }

        pub fn scale(&mut self, factor: f64) {
            let old = std::mem::take(&mut self.slots);
            self.index.clear();
            self.by_count.clear();
            self.total_weight = (self.total_weight as f64 * factor) as u64;
            for entry in old {
                let count = (entry.count as f64 * factor) as u64;
                if count == 0 {
                    continue;
                }
                let error = (entry.error as f64 * factor) as u64;
                let slot = self.slots.len();
                self.index.insert(entry.item.clone(), slot);
                self.by_count.insert((count, slot));
                self.slots.push(SketchEntry {
                    item: entry.item,
                    count,
                    error,
                });
            }
        }

        pub fn remove(&mut self, item: &T) {
            let Some(slot) = self.index.remove(item) else {
                return;
            };
            let count = self.slots[slot].count;
            self.by_count.remove(&(count, slot));
            let last = self.slots.len() - 1;
            if slot != last {
                let moved_count = self.slots[last].count;
                self.by_count.remove(&(moved_count, last));
                self.slots.swap(slot, last);
                self.index.insert(self.slots[slot].item.clone(), slot);
                self.by_count.insert((moved_count, slot));
            }
            self.slots.pop();
        }

        pub fn retain(&mut self, mut pred: impl FnMut(&T) -> bool) {
            let old = std::mem::take(&mut self.slots);
            self.index.clear();
            self.by_count.clear();
            for entry in old {
                if !pred(&entry.item) {
                    continue;
                }
                let slot = self.slots.len();
                self.index.insert(entry.item.clone(), slot);
                self.by_count.insert((entry.count, slot));
                self.slots.push(entry);
            }
        }

        /// Entries in slot order (mirrors `SpaceSaving::iter_entries`).
        pub fn slot_entries(&self) -> Vec<(T, u64, u64)> {
            self.slots
                .iter()
                .map(|e| (e.item.clone(), e.count, e.error))
                .collect()
        }
    }
}

/// One step of a randomized workload applied to both implementations.
#[derive(Debug, Clone)]
enum Op {
    Offer(u8, u8),
    Remove(u8),
    RetainAbove(u8),
    Scale,
}

/// Weighted op mix via a selector (the vendored proptest has no
/// `prop_oneof`): offers dominate, with occasional structural mutations.
fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..11, 0u8..30, 0u8..6).prop_map(|(kind, item, w)| match kind {
        0..=7 => Op::Offer(item, w),
        8 => Op::Remove(item),
        9 => Op::RetainAbove(item),
        _ => Op::Scale,
    })
}

/// Replays a stream into both the sketch and an exact counter.
fn replay(capacity: usize, stream: &[(u8, u8)]) -> (SpaceSaving<u8>, HashMap<u8, u64>) {
    let mut sketch = SpaceSaving::new(capacity);
    let mut exact: HashMap<u8, u64> = HashMap::new();
    for &(item, w) in stream {
        let w = w as u64;
        sketch.offer(item, w);
        if w > 0 {
            *exact.entry(item).or_default() += w;
        }
    }
    (sketch, exact)
}

proptest! {
    /// Guarantee 1: estimate >= true count >= estimate - error.
    #[test]
    fn estimates_bracket_true_counts(
        capacity in 1usize..20,
        stream in proptest::collection::vec((0u8..40, 0u8..10), 0..300),
    ) {
        let (sketch, exact) = replay(capacity, &stream);
        for entry in sketch.entries() {
            let true_count = exact.get(&entry.item).copied().unwrap_or(0);
            prop_assert!(
                entry.count >= true_count,
                "item {} estimate {} < true {}", entry.item, entry.count, true_count
            );
            prop_assert!(
                entry.count - entry.error <= true_count,
                "item {} lower bound {} > true {}",
                entry.item, entry.count - entry.error, true_count
            );
        }
    }

    /// Guarantee 2: any item heavier than total/capacity is monitored.
    #[test]
    fn heavy_hitters_are_monitored(
        capacity in 1usize..20,
        stream in proptest::collection::vec((0u8..40, 0u8..10), 0..300),
    ) {
        let (sketch, exact) = replay(capacity, &stream);
        let threshold = sketch.total_weight() / capacity as u64;
        for (&item, &count) in &exact {
            if count > threshold {
                prop_assert!(
                    sketch.estimate(&item).is_some(),
                    "heavy item {item} (count {count} > threshold {threshold}) evicted"
                );
            }
        }
    }

    /// Count conservation: monitored counts sum to the total stream weight.
    #[test]
    fn counts_are_conserved(
        capacity in 1usize..20,
        stream in proptest::collection::vec((0u8..40, 0u8..10), 0..300),
    ) {
        let (sketch, _) = replay(capacity, &stream);
        let sum: u64 = sketch.entries().iter().map(|e| e.count).sum();
        prop_assert_eq!(sum, sketch.total_weight());
    }

    /// The sketch never exceeds its capacity.
    #[test]
    fn capacity_is_respected(
        capacity in 1usize..8,
        stream in proptest::collection::vec((0u8..255, 1u8..5), 0..200),
    ) {
        let (sketch, _) = replay(capacity, &stream);
        prop_assert!(sketch.len() <= sketch.capacity());
    }

    /// Differential: the lazy-min implementation tracks the old
    /// `BTreeSet<(count, slot)>` implementation slot-for-slot through an
    /// arbitrary interleaving of offers, removals, retains, and scaling.
    /// Slot-order equality is the strongest possible statement: it pins
    /// every eviction choice (count tie-breaks included), not just the
    /// monitored multiset.
    #[test]
    fn lazy_min_matches_btreeset_reference(
        capacity in 1usize..12,
        ops in proptest::collection::vec(arb_op(), 0..400),
    ) {
        let mut new = SpaceSaving::new(capacity);
        let mut old = reference::SpaceSaving::new(capacity);
        for op in &ops {
            match *op {
                Op::Offer(item, w) => {
                    new.offer(item, w as u64);
                    old.offer(item, w as u64);
                }
                Op::Remove(item) => {
                    new.remove(&item);
                    old.remove(&item);
                }
                Op::RetainAbove(bound) => {
                    new.retain(|&i| i >= bound);
                    old.retain(|&i| i >= bound);
                }
                Op::Scale => {
                    new.scale(0.5);
                    old.scale(0.5);
                }
            }
            let new_slots: Vec<(u8, u64, u64)> = new
                .iter_entries()
                .map(|e| (e.item, e.count, e.error))
                .collect();
            prop_assert_eq!(&new_slots, &old.slot_entries(), "after {:?}", op);
            prop_assert_eq!(new.total_weight(), old.total_weight());
        }
    }

    /// Removing arbitrary items keeps the index consistent: every remaining
    /// entry is still queryable with the same estimate.
    #[test]
    fn removal_keeps_consistency(
        stream in proptest::collection::vec((0u8..20, 1u8..5), 0..100),
        removals in proptest::collection::vec(0u8..20, 0..10),
    ) {
        let (mut sketch, _) = replay(8, &stream);
        for item in &removals {
            sketch.remove(item);
        }
        for entry in sketch.entries() {
            prop_assert_eq!(
                sketch.estimate(&entry.item),
                Some((entry.count, entry.error))
            );
        }
    }
}
