//! Million-player scale workloads: skewed, time-varying traffic shapes.
//!
//! The Halo workload models the paper's lifecycle churn; this module
//! models the *load-concentration* regimes that motivate hot-actor
//! replication — a handful of actors absorbing a capacity-breaking share
//! of an otherwise enormous population's traffic:
//!
//! * **Zipf celebrity** — a fixed head of celebrity actors takes a
//!   configurable share of all requests, split among themselves by a
//!   truncated Zipf law. The stationary hotspot: detection has all run
//!   long to find it.
//! * **Flash crowd** — traffic is uniform until a step instant, when a
//!   single actor abruptly captures a peak share (and the aggregate rate
//!   steps up); both decay exponentially back to baseline. Stresses
//!   detection latency and replica-drop hysteresis.
//! * **Diurnal wave** — uniform targeting, sinusoidal aggregate rate.
//!   The no-hotspot control: replication should stay quiet.
//! * **Rotating hotspot** — an adversary re-rolls the hot actor set every
//!   dwell interval, defeating any learned placement. Stresses cooldown
//!   and split/drop churn control.
//!
//! Every shape is a pure function of `(config, sim time, driver RNG)`,
//! so runs are deterministic and — on the sharded backend — independent
//! of shard count by construction (the driver owns its RNG streams, as
//! in [`crate::halo_sharded`]).
//!
//! Requests are single-actor read/write request-replies: `TAG_READ` is
//! side-effect-free (replica-servable under
//! `ReplicationConfig::read_tags = 0b1`), `TAG_WRITE` must execute at
//! the primary. Each player owns a state slab ([`ScaleState::slab`])
//! touched by every handler, so the per-player memory footprint of a
//! 1M-player build is real and auditable ([`MemoryAudit`]).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use actop_runtime::sharded::{submit_client_request_sharded, ShardedCluster};
use actop_runtime::{ActorId, AppLogic, Cluster, Outcome, Reaction, ShardApp};
use actop_sim::{ConservativeRunner, DetRng, Engine, GlobalCtx, Nanos, PhaseCell};

/// Read a player's status: side-effect-free, replica-servable.
pub const TAG_READ: u32 = 0;
/// Update a player's status: must execute at the primary activation.
pub const TAG_WRITE: u32 = 1;

/// Width of one request-pump batch on the sharded backend.
const PUMP_INTERVAL_NS: u64 = 1_000_000;

/// The actor id of player `p` (players are the only actor type here).
pub fn scale_actor(p: u64) -> ActorId {
    ActorId(p)
}

/// SplitMix64 finalizer: the deterministic hash behind hotspot rotation.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How client traffic concentrates over the player population and time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficShape {
    /// Uniform targeting, constant rate.
    Uniform,
    /// A fixed celebrity head takes `celebrity_share` of all requests,
    /// split among the `celebrities` lowest player ids by a truncated
    /// Zipf(`exponent`) law; the rest is uniform over everyone.
    ZipfCelebrity {
        celebrities: u32,
        exponent: f64,
        celebrity_share: f64,
    },
    /// Uniform until `at`; then player `target` captures `peak_share` of
    /// requests and the aggregate rate is multiplied by `rate_boost`,
    /// both decaying exponentially with time constant `decay`.
    FlashCrowd {
        target: u64,
        at: Nanos,
        peak_share: f64,
        decay: Nanos,
        rate_boost: f64,
    },
    /// Uniform targeting; aggregate rate swings sinusoidally by
    /// `swing` (fraction of baseline, `< 1`) over `period`.
    Diurnal { period: Nanos, swing: f64 },
    /// Every `dwell`, an adversary re-rolls `hotspots` hot players
    /// (a deterministic hash of the epoch) that jointly absorb `share`
    /// of requests.
    RotatingHotspot {
        hotspots: u32,
        dwell: Nanos,
        share: f64,
    },
}

/// Configuration of a scale workload run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Player population (one actor each).
    pub players: u64,
    /// Baseline open-loop rate per player, requests per second.
    pub request_rate_per_player: f64,
    /// Fraction of requests that are writes (primary-routed).
    pub write_fraction: f64,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Response payload bytes.
    pub reply_bytes: u64,
    /// Mean read-handler CPU, nanoseconds (exponentially jittered).
    pub read_cpu_ns: f64,
    /// Mean write-handler CPU, nanoseconds (exponentially jittered).
    pub write_cpu_ns: f64,
    /// Bytes of resident state per player (the audit slab).
    pub state_bytes_per_player: usize,
    /// The traffic shape.
    pub shape: TrafficShape,
    /// How long clients keep issuing requests.
    pub duration: Nanos,
    /// Workload seed.
    pub seed: u64,
}

impl ScaleConfig {
    fn base(players: u64, duration: Nanos, seed: u64, shape: TrafficShape) -> Self {
        ScaleConfig {
            players,
            request_rate_per_player: 0.004,
            write_fraction: 0.05,
            request_bytes: 256,
            reply_bytes: 512,
            read_cpu_ns: 3_200_000.0,
            write_cpu_ns: 4_800_000.0,
            state_bytes_per_player: 64,
            shape,
            duration,
            seed,
        }
    }

    /// The headline scenario: four celebrities take 70% of traffic,
    /// Zipf-split so the top one alone draws ~37% — past one server's
    /// capacity at the million-player operating point.
    pub fn celebrity(players: u64, duration: Nanos, seed: u64) -> Self {
        Self::base(
            players,
            duration,
            seed,
            TrafficShape::ZipfCelebrity {
                celebrities: 4,
                exponent: 1.2,
                celebrity_share: 0.7,
            },
        )
    }

    /// A flash crowd: player 0 captures half of all requests a quarter
    /// of the way in, with the aggregate rate stepping up 1.5x, both
    /// decaying over an eighth of the run.
    pub fn flash_crowd(players: u64, duration: Nanos, seed: u64) -> Self {
        Self::base(
            players,
            duration,
            seed,
            TrafficShape::FlashCrowd {
                target: 0,
                at: Nanos::from_nanos(duration.as_nanos() / 4),
                peak_share: 0.5,
                decay: Nanos::from_nanos((duration.as_nanos() / 8).max(1)),
                rate_boost: 1.5,
            },
        )
    }

    /// A diurnal wave: rate swings ±60% over two full periods.
    pub fn diurnal(players: u64, duration: Nanos, seed: u64) -> Self {
        Self::base(
            players,
            duration,
            seed,
            TrafficShape::Diurnal {
                period: Nanos::from_nanos((duration.as_nanos() / 2).max(1)),
                swing: 0.6,
            },
        )
    }

    /// The rotating-hotspot adversary: two hot players re-rolled eight
    /// times over the run, jointly absorbing half of all requests.
    pub fn rotating(players: u64, duration: Nanos, seed: u64) -> Self {
        Self::base(
            players,
            duration,
            seed,
            TrafficShape::RotatingHotspot {
                hotspots: 2,
                dwell: Nanos::from_nanos((duration.as_nanos() / 8).max(1)),
                share: 0.5,
            },
        )
    }
}

pub(crate) fn validate_scale_config(cfg: &ScaleConfig) {
    assert!(cfg.players > 0, "need at least one player");
    assert!(
        cfg.request_rate_per_player > 0.0,
        "need a positive request rate"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.write_fraction),
        "write_fraction must be a probability"
    );
    assert!(cfg.read_cpu_ns > 0.0 && cfg.write_cpu_ns > 0.0);
    match cfg.shape {
        TrafficShape::Uniform => {}
        TrafficShape::ZipfCelebrity {
            celebrities,
            exponent,
            celebrity_share,
        } => {
            assert!(celebrities > 0, "need at least one celebrity");
            assert!(u64::from(celebrities) <= cfg.players);
            assert!(exponent > 0.0, "Zipf exponent must be positive");
            assert!((0.0..=1.0).contains(&celebrity_share));
        }
        TrafficShape::FlashCrowd {
            target,
            peak_share,
            decay,
            rate_boost,
            ..
        } => {
            assert!(target < cfg.players, "flash target out of range");
            assert!((0.0..=1.0).contains(&peak_share));
            assert!(decay > Nanos::ZERO, "decay must be positive");
            assert!(rate_boost >= 1.0, "rate_boost must not shrink traffic");
        }
        TrafficShape::Diurnal { period, swing } => {
            assert!(period > Nanos::ZERO, "period must be positive");
            assert!(
                (0.0..1.0).contains(&swing),
                "swing must keep the rate positive"
            );
        }
        TrafficShape::RotatingHotspot {
            hotspots,
            dwell,
            share,
        } => {
            assert!(hotspots > 0, "need at least one hotspot");
            assert!(u64::from(hotspots) <= cfg.players);
            assert!(dwell > Nanos::ZERO, "dwell must be positive");
            assert!((0.0..=1.0).contains(&share));
        }
    }
}

/// The deterministic traffic sampler: target picks and rate modulation
/// as pure functions of `(shape, sim time, driver RNG)`.
#[derive(Debug, Clone)]
pub struct ScaleTraffic {
    shape: TrafficShape,
    players: u64,
    /// Cumulative truncated-Zipf distribution over celebrity ranks
    /// (empty unless the shape is `ZipfCelebrity`).
    zipf_cdf: Vec<f64>,
}

impl ScaleTraffic {
    /// Precomputes the sampler for one shape and population.
    pub fn new(shape: TrafficShape, players: u64) -> Self {
        let zipf_cdf = match shape {
            TrafficShape::ZipfCelebrity {
                celebrities,
                exponent,
                ..
            } => {
                let weights: Vec<f64> = (0..celebrities)
                    .map(|k| f64::from(k + 1).powf(-exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        ScaleTraffic {
            shape,
            players,
            zipf_cdf,
        }
    }

    /// Multiplier on the baseline aggregate rate at sim time `now`.
    pub fn rate_multiplier(&self, now: Nanos) -> f64 {
        match self.shape {
            TrafficShape::FlashCrowd {
                at,
                decay,
                rate_boost,
                ..
            } if now >= at => {
                let age = (now.as_nanos() - at.as_nanos()) as f64 / decay.as_nanos() as f64;
                1.0 + (rate_boost - 1.0) * (-age).exp()
            }
            TrafficShape::Diurnal { period, swing } => {
                let phase = now.as_nanos() as f64 / period.as_nanos() as f64;
                1.0 + swing * (phase * std::f64::consts::TAU).sin()
            }
            _ => 1.0,
        }
    }

    /// Picks the target player of one request issued at sim time `now`.
    pub fn pick(&self, now: Nanos, rng: &mut DetRng) -> u64 {
        match self.shape {
            TrafficShape::Uniform | TrafficShape::Diurnal { .. } => {
                rng.below(self.players as usize) as u64
            }
            TrafficShape::ZipfCelebrity {
                celebrity_share, ..
            } => {
                if rng.chance(celebrity_share) {
                    let u = rng.unit();
                    let rank = self.zipf_cdf.partition_point(|&c| c < u);
                    rank.min(self.zipf_cdf.len() - 1) as u64
                } else {
                    rng.below(self.players as usize) as u64
                }
            }
            TrafficShape::FlashCrowd {
                target,
                at,
                peak_share,
                decay,
                ..
            } => {
                let share = if now < at {
                    0.0
                } else {
                    let age = (now.as_nanos() - at.as_nanos()) as f64 / decay.as_nanos() as f64;
                    peak_share * (-age).exp()
                };
                if rng.chance(share) {
                    target
                } else {
                    rng.below(self.players as usize) as u64
                }
            }
            TrafficShape::RotatingHotspot {
                hotspots,
                dwell,
                share,
            } => {
                if rng.chance(share) {
                    let epoch = now.as_nanos() / dwell.as_nanos();
                    let slot = rng.below(hotspots as usize) as u64;
                    mix64(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ slot) % self.players
                } else {
                    rng.below(self.players as usize) as u64
                }
            }
        }
    }
}

/// Per-run state: the configuration and the per-player memory slab.
pub struct ScaleState {
    pub(crate) cfg: ScaleConfig,
    /// One resident allocation per player, deterministically filled —
    /// handlers read it, so a million-player build carries (and the
    /// audit measures) a genuine per-player footprint.
    slab: Vec<Box<[u8]>>,
}

impl ScaleState {
    fn new(cfg: ScaleConfig) -> Self {
        let slab = (0..cfg.players)
            .map(|p| vec![(mix64(p) & 0xFF) as u8; cfg.state_bytes_per_player].into_boxed_slice())
            .collect();
        ScaleState { cfg, slab }
    }

    fn memory_audit(&self) -> MemoryAudit {
        MemoryAudit {
            players: self.cfg.players,
            slab_bytes: self.slab.iter().map(|s| s.len() as u64).sum(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// The per-player memory accounting of one build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAudit {
    /// Player population.
    pub players: u64,
    /// Total bytes held by the player state slab.
    pub slab_bytes: u64,
    /// Process peak RSS (`VmHWM`), if the platform exposes it. Wall
    /// truth, not sim state: excluded from determinism comparisons.
    pub peak_rss_bytes: Option<u64>,
}

impl MemoryAudit {
    /// Slab bytes per player.
    pub fn bytes_per_player(&self) -> f64 {
        self.slab_bytes as f64 / self.players.max(1) as f64
    }
}

/// Process peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// The request handler shared by both backends: touch the player's
/// slab, burn the read or write cost, reply.
fn scale_reaction(state: &ScaleState, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
    let touch = state
        .slab
        .get(actor.0 as usize)
        .map_or(0.0, |s| f64::from(s[0]));
    let mean = match tag {
        TAG_READ => state.cfg.read_cpu_ns,
        TAG_WRITE => state.cfg.write_cpu_ns,
        other => panic!("scale workload got unknown tag {other}"),
    };
    Reaction {
        cpu_ns: rng.exp(mean) + touch,
        blocking_ns: 0.0,
        outcome: Outcome::Reply {
            bytes: state.cfg.reply_bytes,
        },
    }
}

// ---------------------------------------------------------------------
// Sequential backend.
// ---------------------------------------------------------------------

struct ScaleApp {
    state: Rc<RefCell<ScaleState>>,
}

impl AppLogic for ScaleApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        scale_reaction(&self.state.borrow(), actor, tag, rng)
    }
}

/// The built scale workload on the sequential backend.
pub struct ScaleWorkload {
    state: Rc<RefCell<ScaleState>>,
}

impl ScaleWorkload {
    /// Creates the workload and its application logic.
    pub fn build(cfg: ScaleConfig) -> (Box<dyn AppLogic>, ScaleWorkload) {
        validate_scale_config(&cfg);
        let state = Rc::new(RefCell::new(ScaleState::new(cfg)));
        let app = Box::new(ScaleApp {
            state: Rc::clone(&state),
        });
        (app, ScaleWorkload { state })
    }

    /// The per-player memory accounting of this build.
    pub fn memory_audit(&self) -> MemoryAudit {
        self.state.borrow().memory_audit()
    }

    /// Schedules the open-loop client request stream.
    pub fn install(&self, engine: &mut Engine<Cluster>) {
        let cfg = self.state.borrow().cfg;
        let pump = SeqPump {
            cfg,
            traffic: ScaleTraffic::new(cfg.shape, cfg.players),
            rng_req: DetRng::stream(cfg.seed, 0x60),
            rng_mix: DetRng::stream(cfg.seed, 0x61),
        };
        engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
            request_tick(c, e, pump);
        });
    }
}

struct SeqPump {
    cfg: ScaleConfig,
    traffic: ScaleTraffic,
    /// Target picks and inter-arrival gaps.
    rng_req: DetRng,
    /// Read/write choice per request.
    rng_mix: DetRng,
}

fn request_tick(cluster: &mut Cluster, engine: &mut Engine<Cluster>, mut pump: SeqPump) {
    let now = engine.now();
    let player = pump.traffic.pick(now, &mut pump.rng_req);
    let tag = if pump.rng_mix.chance(pump.cfg.write_fraction) {
        TAG_WRITE
    } else {
        TAG_READ
    };
    cluster.submit_client_request(engine, scale_actor(player), tag, pump.cfg.request_bytes);
    let rate = pump.cfg.players as f64
        * pump.cfg.request_rate_per_player
        * pump.traffic.rate_multiplier(now);
    let gap = Nanos::from_secs_f64(pump.rng_req.exp(1.0 / rate));
    if now + gap < pump.cfg.duration {
        engine.schedule_after(gap, move |c: &mut Cluster, e| {
            request_tick(c, e, pump);
        });
    }
}

// ---------------------------------------------------------------------
// Sharded backend.
// ---------------------------------------------------------------------

struct ShardScaleApp {
    state: Arc<PhaseCell<ScaleState>>,
}

impl ShardApp for ShardScaleApp {
    fn on_request(&self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        // SAFETY: the slab is never mutated after construction; handlers
        // only read it, so window-phase access is race-free.
        scale_reaction(unsafe { self.state.get() }, actor, tag, rng)
    }

    fn continuation_cpu_ns(&self) -> f64 {
        // Request/reply only — no fan-out, so never consulted.
        0.0
    }
}

/// The built scale workload on the sharded backend.
pub struct ShardedScaleWorkload {
    state: Arc<PhaseCell<ScaleState>>,
}

impl ShardedScaleWorkload {
    /// Creates the workload and its application logic.
    pub fn build(cfg: ScaleConfig) -> (Box<dyn ShardApp>, ShardedScaleWorkload) {
        validate_scale_config(&cfg);
        let state = Arc::new(PhaseCell::new(ScaleState::new(cfg)));
        let app = Box::new(ShardScaleApp {
            state: Arc::clone(&state),
        });
        (app, ShardedScaleWorkload { state })
    }

    /// The per-player memory accounting of this build. Call only while
    /// the runner is idle.
    pub fn memory_audit(&self) -> MemoryAudit {
        // SAFETY: no window phase is live while the runner is idle.
        unsafe { self.state.get() }.memory_audit()
    }

    /// Schedules the batched client request pump as a serial-phase
    /// global, exactly as [`crate::halo_sharded`] does: arrivals of the
    /// next millisecond are pre-drawn with exact timestamps, keeping
    /// parallel windows wide while the driver's RNG streams stay
    /// independent of shard count.
    pub fn install(&self, runner: &mut ConservativeRunner<ShardedCluster>) {
        // SAFETY: the runner has not started; we have exclusive access.
        let cfg = unsafe { self.state.get() }.cfg;
        let pump = ShardPump {
            cfg,
            traffic: ScaleTraffic::new(cfg.shape, cfg.players),
            rng_req: DetRng::stream(cfg.seed, 0x60),
            rng_mix: DetRng::stream(cfg.seed, 0x61),
            rng_gateway: DetRng::stream(cfg.seed, 0x62),
            rng_net: DetRng::stream(cfg.seed, 0x63),
            next_at: Nanos::ZERO,
            next_request: 0,
        };
        runner.schedule_global(Nanos::ZERO, move |ctx| request_pump(pump, ctx));
    }
}

/// Everything the self-rescheduling request pump carries between batches.
struct ShardPump {
    cfg: ScaleConfig,
    traffic: ScaleTraffic,
    /// Target picks and inter-arrival gaps.
    rng_req: DetRng,
    /// Read/write choice per request.
    rng_mix: DetRng,
    /// Gateway selection per request.
    rng_gateway: DetRng,
    /// Client-to-gateway network delay per request.
    rng_net: DetRng,
    /// Timestamp of the next (already drawn into) arrival slot.
    next_at: Nanos,
    /// Monotone request serial.
    next_request: u64,
}

/// The open-loop client request stream, one batch per call.
fn request_pump(mut pump: ShardPump, ctx: &mut GlobalCtx<'_, ShardedCluster>) {
    let batch_end = ctx.now + Nanos::from_nanos(PUMP_INTERVAL_NS);
    while pump.next_at < batch_end && pump.next_at < pump.cfg.duration {
        let player = pump.traffic.pick(pump.next_at, &mut pump.rng_req);
        let tag = if pump.rng_mix.chance(pump.cfg.write_fraction) {
            TAG_WRITE
        } else {
            TAG_READ
        };
        let request = pump.next_request;
        pump.next_request += 1;
        submit_client_request_sharded(
            ctx,
            pump.next_at,
            scale_actor(player),
            tag,
            pump.cfg.request_bytes,
            request,
            &mut pump.rng_gateway,
            &mut pump.rng_net,
        );
        let rate = pump.cfg.players as f64
            * pump.cfg.request_rate_per_player
            * pump.traffic.rate_multiplier(pump.next_at);
        let gap = Nanos::from_secs_f64(pump.rng_req.exp(1.0 / rate));
        pump.next_at += gap;
    }
    if pump.next_at < pump.cfg.duration {
        ctx.schedule_global(batch_end, move |ctx| request_pump(pump, ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::sharded::{build_sharded, install_sharded_hooks, sharded_lookahead};
    use actop_runtime::{ClusterMetrics, RuntimeConfig};

    fn small_cfg(shape: TrafficShape) -> ScaleConfig {
        let mut cfg = ScaleConfig::base(2_000, Nanos::from_secs(2), 11, shape);
        // Enough aggregate traffic for a meaningful 2 s run.
        cfg.request_rate_per_player = 0.5;
        cfg.read_cpu_ns = 200_000.0;
        cfg.write_cpu_ns = 300_000.0;
        cfg
    }

    #[test]
    fn zipf_celebrity_concentrates_on_head() {
        let cfg = ScaleConfig::celebrity(100_000, Nanos::from_secs(10), 5);
        let traffic = ScaleTraffic::new(cfg.shape, cfg.players);
        let mut rng = DetRng::stream(5, 0x60);
        let draws = 40_000;
        let mut head = 0u64;
        let mut celebs = 0u64;
        for _ in 0..draws {
            let p = traffic.pick(Nanos::from_secs(1), &mut rng);
            if p == 0 {
                head += 1;
            }
            if p < 4 {
                celebs += 1;
            }
        }
        let head_share = head as f64 / draws as f64;
        let celeb_share = celebs as f64 / draws as f64;
        // Top celebrity: 0.7 * 1 / (1 + 2^-1.2 + 3^-1.2 + 4^-1.2) ~ 0.37.
        assert!(
            (0.30..0.45).contains(&head_share),
            "head share {head_share}"
        );
        assert!(
            (0.65..0.75).contains(&celeb_share),
            "celebrity share {celeb_share}"
        );
    }

    #[test]
    fn flash_crowd_steps_then_decays() {
        let cfg = ScaleConfig::flash_crowd(100_000, Nanos::from_secs(80), 9);
        let traffic = ScaleTraffic::new(cfg.shape, cfg.players);
        let share_at = |now: Nanos| {
            let mut rng = DetRng::stream(9, 0x60);
            let draws = 8_000;
            let hits = (0..draws)
                .filter(|_| traffic.pick(now, &mut rng) == 0)
                .count();
            hits as f64 / draws as f64
        };
        // Before the step the target is one uniform player in 100K.
        assert!(share_at(Nanos::from_secs(10)) < 0.01);
        // Just after the step it takes ~peak_share of traffic...
        let peak = share_at(Nanos::from_secs(20));
        assert!((0.40..0.60).contains(&peak), "peak share {peak}");
        // ...and four time constants later it has decayed away.
        let late = share_at(Nanos::from_secs(60));
        assert!(late < 0.05, "late share {late}");
        // The rate boost steps and decays alongside.
        assert!((traffic.rate_multiplier(Nanos::from_secs(10)) - 1.0).abs() < 1e-9);
        assert!(traffic.rate_multiplier(Nanos::from_secs(20)) > 1.4);
        assert!(traffic.rate_multiplier(Nanos::from_secs(70)) < 1.05);
    }

    #[test]
    fn diurnal_rate_oscillates_around_baseline() {
        let cfg = ScaleConfig::diurnal(100_000, Nanos::from_secs(100), 3);
        let traffic = ScaleTraffic::new(cfg.shape, cfg.players);
        let samples: Vec<f64> = (0..100)
            .map(|i| traffic.rate_multiplier(Nanos::from_secs(i)))
            .collect();
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(max > 1.5, "max {max}");
        assert!(min < 0.5 && min > 0.0, "min {min}");
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rotating_hotspot_moves_each_dwell() {
        let cfg = ScaleConfig::rotating(100_000, Nanos::from_secs(80), 7);
        let TrafficShape::RotatingHotspot { dwell, .. } = cfg.shape else {
            unreachable!()
        };
        let traffic = ScaleTraffic::new(
            TrafficShape::RotatingHotspot {
                hotspots: 1,
                dwell,
                share: 1.0,
            },
            cfg.players,
        );
        let mut rng = DetRng::stream(7, 0x60);
        let hot_at = |now: Nanos, rng: &mut DetRng| traffic.pick(now, rng);
        let epochs: Vec<u64> = (0..4)
            .map(|e| hot_at(Nanos::from_nanos(e * dwell.as_nanos() + 1), &mut rng))
            .collect();
        // All four epochs pick distinct hot players.
        let mut unique = epochs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), epochs.len(), "hotspots {epochs:?}");
        // Within one epoch the (single) hotspot is stable.
        let again = hot_at(Nanos::from_nanos(1), &mut rng);
        assert_eq!(again, epochs[0]);
    }

    #[test]
    fn memory_audit_accounts_the_slab() {
        let mut cfg = small_cfg(TrafficShape::Uniform);
        cfg.players = 1_000;
        cfg.state_bytes_per_player = 64;
        let (_, workload) = ScaleWorkload::build(cfg);
        let audit = workload.memory_audit();
        assert_eq!(audit.slab_bytes, 64_000);
        assert!((audit.bytes_per_player() - 64.0).abs() < 1e-9);
        // Linux exposes VmHWM; the slab is resident, so peak RSS covers it.
        if let Some(rss) = audit.peak_rss_bytes {
            assert!(rss >= audit.slab_bytes);
        }
    }

    #[test]
    fn sequential_scale_run_is_deterministic_and_completes() {
        let run = || {
            let cfg = small_cfg(TrafficShape::ZipfCelebrity {
                celebrities: 4,
                exponent: 1.2,
                celebrity_share: 0.7,
            });
            let (app, workload) = ScaleWorkload::build(cfg);
            let mut cluster = Cluster::new(RuntimeConfig::paper_testbed(11), app);
            let mut engine: Engine<Cluster> = Engine::new();
            workload.install(&mut engine);
            engine.run(&mut cluster);
            assert!(
                cluster.metrics.submitted > 500,
                "{}",
                cluster.metrics.submitted
            );
            assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
            (
                cluster.metrics.submitted,
                cluster.metrics.e2e_latency.quantile(0.99),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_scale_identical_across_shard_counts() {
        let run = |shards: usize, threads: usize| {
            let cfg = small_cfg(TrafficShape::ZipfCelebrity {
                celebrities: 4,
                exponent: 1.2,
                celebrity_share: 0.7,
            });
            let (app, workload) = ShardedScaleWorkload::build(cfg);
            let rt = RuntimeConfig::paper_testbed(11);
            let series_bin = rt.series_bin_ns;
            let lookahead = sharded_lookahead(&rt);
            let worlds = build_sharded(rt, app, shards);
            let mut runner = ConservativeRunner::new(worlds, lookahead);
            install_sharded_hooks(&mut runner);
            workload.install(&mut runner);
            runner.run_until(cfg.duration + Nanos::from_millis(200), threads);
            let mut merged = ClusterMetrics::new(series_bin);
            for cell in runner.cells() {
                merged.merge_from(cell.world.metrics());
            }
            (
                merged.submitted,
                merged.completed,
                merged.remote_messages,
                merged.local_messages,
                merged.e2e_latency.summary(),
            )
        };
        let base = run(1, 1);
        assert!(base.0 > 500, "submitted {}", base.0);
        assert_eq!(base.0, base.1, "all requests complete");
        for (shards, threads) in [(2, 2), (4, 3)] {
            assert_eq!(base, run(shards, threads), "shards={shards}");
        }
    }
}
