//! The Halo Presence workload (§3, §6.1).
//!
//! Two actor types: **players** and **games**. A client status request to a
//! player fans out through the player's game to all eight members:
//!
//! ```text
//! client -> player --POLL--> game --PING--> 8 players
//!                                 <--reply--
//!                  <--reply--
//! client <- player
//! ```
//!
//! One client request therefore produces 18 actor-to-actor messages
//! (1 + 8 requests, 8 + 1 replies), exactly the paper's count.
//!
//! The lifecycle churn matches §6: players arrive as a Poisson process
//! sized for the target concurrent population, idle players wait in a
//! matchmaking pool, eight random pool members form a game, games last
//! 20–30 minutes (uniform), players play 3–5 games and then leave. At the
//! paper's parameters this changes about 1% of the communication graph per
//! minute.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use actop_runtime::{ActorId, AppLogic, Call, Cluster, Reaction};
use actop_sim::{DetRng, Engine, Nanos};

/// Tag of a client status request to a player.
pub const TAG_STATUS: u32 = 0;
/// Tag of a player's poll of its game.
pub const TAG_POLL: u32 = 1;
/// Tag of a game's broadcast ping to a member.
pub const TAG_PING: u32 = 2;

/// Game actor ids live above this offset; player ids below it.
const GAME_BASE: u64 = 1 << 40;

/// The actor id of player `p`.
pub fn player_actor(p: u64) -> ActorId {
    debug_assert!(p < GAME_BASE);
    ActorId(p)
}

/// The actor id of game `g`.
pub fn game_actor(g: u64) -> ActorId {
    ActorId(GAME_BASE + g)
}

/// Halo Presence configuration.
#[derive(Debug, Clone, Copy)]
pub struct HaloConfig {
    /// Target concurrent players (the paper runs 10K / 100K / 1M).
    pub total_players: u64,
    /// Players per game (8).
    pub players_per_game: usize,
    /// Idle matchmaking-pool target (1000 at paper scale).
    pub idle_pool_target: usize,
    /// Game duration range in seconds (uniform; 1200–1800 in the paper).
    pub game_duration_s: (f64, f64),
    /// Games played per player before leaving (uniform inclusive; 3–5).
    pub games_per_player: (u32, u32),
    /// Client status-request rate, requests per second.
    pub request_rate: f64,
    /// Client request payload bytes.
    pub request_bytes: u64,
    /// Actor-to-actor payload bytes.
    pub payload_bytes: u64,
    /// Mean CPU cost of the player STATUS handler, nanoseconds (handler
    /// times are exponentially distributed around their mean).
    pub status_cpu_ns: f64,
    /// Mean CPU cost of the game POLL (broadcast) handler, nanoseconds.
    pub poll_cpu_ns: f64,
    /// Mean CPU cost of the player PING handler, nanoseconds.
    pub ping_cpu_ns: f64,
    /// CPU cost of processing one gathered sub-reply, nanoseconds.
    pub continuation_cpu_ns: f64,
    /// How long clients keep issuing requests.
    pub duration: Nanos,
    /// Workload seed.
    pub seed: u64,
}

impl HaloConfig {
    /// The paper's parameters at a given scale. `total_players` is the
    /// concurrent population; the pool target scales proportionally
    /// (1000 at 100K players).
    pub fn paper_scale(total_players: u64, request_rate: f64, duration: Nanos, seed: u64) -> Self {
        HaloConfig {
            total_players,
            players_per_game: 8,
            idle_pool_target: ((total_players / 100) as usize).max(8),
            game_duration_s: (1200.0, 1800.0),
            games_per_player: (3, 5),
            request_rate,
            request_bytes: 300,
            payload_bytes: 600,
            status_cpu_ns: 210_000.0,
            poll_cpu_ns: 210_000.0,
            ping_cpu_ns: 180_000.0,
            continuation_cpu_ns: 125_000.0,
            duration,
            seed,
        }
    }

    /// A fast-churn variant for tests: seconds-long games so lifecycle
    /// transitions happen within short runs.
    pub fn fast_churn(total_players: u64, request_rate: f64, duration: Nanos, seed: u64) -> Self {
        HaloConfig {
            game_duration_s: (5.0, 10.0),
            ..Self::paper_scale(total_players, request_rate, duration, seed)
        }
    }

    /// Mean session length in seconds (games per player × mean duration).
    pub fn mean_session_secs(&self) -> f64 {
        let games = (self.games_per_player.0 + self.games_per_player.1) as f64 / 2.0;
        let duration = (self.game_duration_s.0 + self.game_duration_s.1) / 2.0;
        games * duration
    }

    /// Player arrival rate sustaining the target population, players/sec.
    pub fn arrival_rate(&self) -> f64 {
        self.total_players as f64 / self.mean_session_secs()
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct PlayerInfo {
    pub(crate) game: Option<u64>,
    pub(crate) games_left: u32,
}

/// Lifecycle statistics, exposed for tests and convergence benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// Games started (including pre-population).
    pub games_started: u64,
    /// Games that ran to completion.
    pub games_ended: u64,
    /// Players who arrived (including pre-population).
    pub players_arrived: u64,
    /// Players who finished their last game and left.
    pub players_left: u64,
}

/// The lifecycle state of the Halo population, shared between the request
/// handlers and the driver. The sequential backend wraps it in an
/// `Rc<RefCell<..>>`; the sharded backend wraps it in an
/// `Arc<PhaseCell<..>>` and confines mutation to serial-phase globals.
pub(crate) struct HaloState {
    pub(crate) cfg: HaloConfig,
    pub(crate) rng: DetRng,
    pub(crate) players: HashMap<u64, PlayerInfo>,
    pub(crate) games: HashMap<u64, Vec<u64>>,
    pub(crate) pool: Vec<u64>,
    pub(crate) alive: Vec<u64>,
    pub(crate) alive_pos: HashMap<u64, usize>,
    pub(crate) next_player: u64,
    pub(crate) next_game: u64,
    pub(crate) stats: HaloStats,
}

impl HaloState {
    pub(crate) fn new(cfg: HaloConfig) -> Self {
        HaloState {
            rng: DetRng::stream(cfg.seed, 0x40),
            players: HashMap::new(),
            games: HashMap::new(),
            pool: Vec::new(),
            alive: Vec::new(),
            alive_pos: HashMap::new(),
            next_player: 0,
            next_game: 0,
            stats: HaloStats::default(),
            cfg,
        }
    }

    fn add_alive(&mut self, p: u64) {
        self.alive_pos.insert(p, self.alive.len());
        self.alive.push(p);
    }

    pub(crate) fn remove_alive(&mut self, p: u64) {
        let Some(pos) = self.alive_pos.remove(&p) else {
            return;
        };
        let last = self.alive.len() - 1;
        self.alive.swap(pos, last);
        self.alive.pop();
        if pos <= last && pos < self.alive.len() {
            self.alive_pos.insert(self.alive[pos], pos);
        }
    }

    pub(crate) fn new_player(&mut self) -> u64 {
        let p = self.next_player;
        self.next_player += 1;
        let (lo, hi) = self.cfg.games_per_player;
        let games_left = self.rng.range_inclusive(lo as u64, hi as u64) as u32;
        self.players.insert(
            p,
            PlayerInfo {
                game: None,
                games_left,
            },
        );
        self.add_alive(p);
        self.pool.push(p);
        self.stats.players_arrived += 1;
        p
    }

    /// Forms one game from random pool members. Returns its id.
    pub(crate) fn form_game(&mut self) -> u64 {
        let g = self.next_game;
        self.next_game += 1;
        let mut members = Vec::with_capacity(self.cfg.players_per_game);
        for _ in 0..self.cfg.players_per_game {
            let idx = self.rng.below(self.pool.len());
            members.push(self.pool.swap_remove(idx));
        }
        for &p in &members {
            if let Some(info) = self.players.get_mut(&p) {
                info.game = Some(g);
            }
        }
        self.games.insert(g, members);
        self.stats.games_started += 1;
        g
    }

    pub(crate) fn can_form_game(&self) -> bool {
        self.pool.len() >= self.cfg.players_per_game && self.pool.len() > self.cfg.idle_pool_target
    }

    pub(crate) fn game_duration(&mut self) -> Nanos {
        let (lo, hi) = self.cfg.game_duration_s;
        Nanos::from_secs_f64(self.rng.uniform(lo, hi))
    }
}

/// Workload parameter sanity checks, shared by both backends' builders.
pub(crate) fn validate_config(cfg: &HaloConfig) {
    assert!(cfg.total_players >= cfg.players_per_game as u64);
    assert!(cfg.players_per_game >= 2);
    assert!(cfg.request_rate > 0.0);
}

/// The built Halo Presence workload.
pub struct HaloWorkload {
    state: Rc<RefCell<HaloState>>,
}

struct HaloApp {
    state: Rc<RefCell<HaloState>>,
    cfg: HaloConfig,
}

/// Handles one Halo request against the current lifecycle state. Shared by
/// the sequential [`AppLogic`] adapter and the sharded backend's
/// `ShardApp` adapter so both backends run identical application logic;
/// `rng` is whichever stream the calling backend owns.
pub(crate) fn halo_reaction(
    state: &HaloState,
    actor: ActorId,
    tag: u32,
    rng: &mut DetRng,
) -> Reaction {
    let cfg = &state.cfg;
    // Handler compute times are exponentially distributed around their
    // configured means, giving realistic service-time variance.
    let mut cost = |mean: f64| rng.exp(mean);
    match tag {
        TAG_STATUS => {
            let player = actor.0;
            let game = state.players.get(&player).and_then(|info| info.game);
            match game.filter(|g| state.games.contains_key(g)) {
                Some(g) => Reaction::fan_out(
                    cost(cfg.status_cpu_ns),
                    vec![Call {
                        to: game_actor(g),
                        tag: TAG_POLL,
                        bytes: cfg.payload_bytes,
                    }],
                    cfg.request_bytes,
                ),
                // Idle or departed player: answer from local state.
                None => Reaction::reply(cost(cfg.status_cpu_ns * 0.5), cfg.request_bytes),
            }
        }
        TAG_POLL => {
            let game = actor.0 - GAME_BASE;
            match state.games.get(&game) {
                Some(members) => {
                    let calls = members
                        .iter()
                        .map(|&p| Call {
                            to: player_actor(p),
                            tag: TAG_PING,
                            bytes: cfg.payload_bytes,
                        })
                        .collect();
                    Reaction::fan_out(cost(cfg.poll_cpu_ns), calls, cfg.payload_bytes)
                }
                // The game ended while the poll was in flight.
                None => Reaction::reply(cost(cfg.poll_cpu_ns * 0.5), cfg.payload_bytes),
            }
        }
        TAG_PING => Reaction::reply(cost(cfg.ping_cpu_ns), cfg.payload_bytes),
        other => unreachable!("unknown Halo tag {other}"),
    }
}

impl AppLogic for HaloApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        let state = self.state.borrow();
        halo_reaction(&state, actor, tag, rng)
    }

    fn continuation_cpu_ns(&self) -> f64 {
        self.cfg.continuation_cpu_ns
    }
}

impl HaloWorkload {
    /// Creates the workload and its application logic.
    pub fn build(cfg: HaloConfig) -> (Box<dyn AppLogic>, HaloWorkload) {
        validate_config(&cfg);
        let state = Rc::new(RefCell::new(HaloState::new(cfg)));
        let app = Box::new(HaloApp {
            state: Rc::clone(&state),
            cfg,
        });
        (app, HaloWorkload { state })
    }

    /// Current lifecycle statistics.
    pub fn stats(&self) -> HaloStats {
        self.state.borrow().stats
    }

    /// Number of currently live players.
    pub fn live_players(&self) -> usize {
        self.state.borrow().alive.len()
    }

    /// Number of currently running games.
    pub fn live_games(&self) -> usize {
        self.state.borrow().games.len()
    }

    /// Schedules pre-population, player arrivals, matchmaking churn, and
    /// the client request stream.
    pub fn install(&self, engine: &mut Engine<Cluster>) {
        let state = Rc::clone(&self.state);
        engine.schedule(Nanos::ZERO, move |_c: &mut Cluster, e| {
            prepopulate(&state, e);
            let arrivals = Rc::clone(&state);
            arrival_tick(&arrivals, e);
            let requests = Rc::clone(&state);
            let rng = {
                let seed = requests.borrow().cfg.seed;
                DetRng::stream(seed, 0x41)
            };
            request_tick(requests, rng, e);
        });
    }
}

/// Creates the steady-state population at time zero: the idle pool at its
/// target size, everyone else in games with uniformly residual end times.
fn prepopulate(state: &Rc<RefCell<HaloState>>, engine: &mut Engine<Cluster>) {
    let mut ends = Vec::new();
    {
        let mut st = state.borrow_mut();
        let total = st.cfg.total_players;
        for _ in 0..total {
            let p = st.new_player();
            // Pre-populated players are mid-session: their remaining game
            // count is residual (uniform in [1, max]), otherwise departures
            // would lag arrivals and the population would overshoot.
            let hi = st.cfg.games_per_player.1 as u64;
            let remaining = st.rng.range_inclusive(1, hi) as u32;
            if let Some(info) = st.players.get_mut(&p) {
                info.games_left = remaining;
            }
        }
        // Leave the pool at its target; everyone else plays.
        while st.can_form_game() {
            let g = st.form_game();
            // Residual lifetime: uniform over a full game duration.
            let full = st.game_duration();
            let residual = Nanos::from_nanos(st.rng.range_inclusive(1, full.as_nanos().max(2)));
            ends.push((g, residual));
        }
    }
    for (g, at) in ends {
        let state = Rc::clone(state);
        engine.schedule(at, move |_c: &mut Cluster, e| game_over(&state, e, g));
    }
}

/// One player arrives; matchmaking may start games.
fn arrival_tick(state: &Rc<RefCell<HaloState>>, engine: &mut Engine<Cluster>) {
    let (gap, new_games, duration_end) = {
        let mut st = state.borrow_mut();
        st.new_player();
        let mut new_games = Vec::new();
        while st.can_form_game() {
            let g = st.form_game();
            let d = st.game_duration();
            new_games.push((g, d));
        }
        let rate = st.cfg.arrival_rate();
        let gap = Nanos::from_secs_f64(st.rng.exp(1.0 / rate));
        (gap, new_games, st.cfg.duration)
    };
    for (g, d) in new_games {
        let state = Rc::clone(state);
        engine.schedule_after(d, move |_c: &mut Cluster, e| game_over(&state, e, g));
    }
    if engine.now() + gap < duration_end {
        let state = Rc::clone(state);
        engine.schedule_after(gap, move |_c: &mut Cluster, e| arrival_tick(&state, e));
    }
}

/// A game ends: members leave or re-enter the pool; matchmaking continues.
fn game_over(state: &Rc<RefCell<HaloState>>, engine: &mut Engine<Cluster>, game: u64) {
    let new_games = {
        let mut st = state.borrow_mut();
        let Some(members) = st.games.remove(&game) else {
            return;
        };
        st.stats.games_ended += 1;
        for p in members {
            let Some(info) = st.players.get_mut(&p) else {
                continue;
            };
            info.game = None;
            info.games_left = info.games_left.saturating_sub(1);
            if info.games_left == 0 {
                st.players.remove(&p);
                st.remove_alive(p);
                st.stats.players_left += 1;
            } else {
                st.pool.push(p);
            }
        }
        let mut new_games = Vec::new();
        while st.can_form_game() {
            let g = st.form_game();
            let d = st.game_duration();
            new_games.push((g, d));
        }
        new_games
    };
    for (g, d) in new_games {
        let state = Rc::clone(state);
        engine.schedule_after(d, move |_c: &mut Cluster, e| game_over(&state, e, g));
    }
}

/// The open-loop client status-request stream.
fn request_tick(state: Rc<RefCell<HaloState>>, mut rng: DetRng, engine: &mut Engine<Cluster>) {
    let (target, gap, duration_end) = {
        let st = state.borrow();
        let target = if st.alive.is_empty() {
            None
        } else {
            Some(st.alive[rng.below(st.alive.len())])
        };
        let gap = Nanos::from_secs_f64(rng.exp(1.0 / st.cfg.request_rate));
        (target, gap, st.cfg.duration)
    };
    if let Some(player) = target {
        let bytes = state.borrow().cfg.request_bytes;
        // The closure needs the cluster; submit directly here.
        // (request_tick is itself an engine event, so we have it.)
        engine.schedule(engine.now(), move |c: &mut Cluster, e| {
            c.submit_client_request(e, player_actor(player), TAG_STATUS, bytes);
        });
    }
    if engine.now() + gap < duration_end {
        engine.schedule_after(gap, move |_c: &mut Cluster, e| {
            request_tick(state, rng, e);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::RuntimeConfig;

    /// Runs until the workload's configured duration (not to full drain:
    /// once arrivals stop, the remaining lifecycle would play out and the
    /// population would empty, which is not the steady state the paper
    /// measures).
    fn run_halo(cfg: HaloConfig, rt_seed: u64) -> (Cluster, HaloWorkload) {
        let (app, workload) = HaloWorkload::build(cfg);
        let mut cluster = Cluster::new(RuntimeConfig::paper_testbed(rt_seed), app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        let end = cfg.duration;
        engine.run_until(&mut cluster, end);
        (cluster, workload)
    }

    #[test]
    fn status_request_produces_eighteen_actor_messages() {
        // One request against a quiet, non-churning population.
        let mut cfg = HaloConfig::paper_scale(64, 0.001, Nanos::from_millis(10), 3);
        cfg.idle_pool_target = 0; // Everyone in games.
        cfg.request_rate = 1.0;
        cfg.duration = Nanos::from_millis(500);
        let (app, workload) = HaloWorkload::build(cfg);
        let mut cluster = Cluster::new(RuntimeConfig::paper_testbed(3), app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        engine.run(&mut cluster);
        let completed = cluster.metrics.completed;
        assert!(completed >= 1, "at least one request completed");
        let actor_msgs = cluster.metrics.remote_messages + cluster.metrics.local_messages;
        assert_eq!(
            actor_msgs,
            completed * 18,
            "18 actor messages per status request"
        );
    }

    #[test]
    fn population_reaches_target_and_sustains() {
        let cfg = HaloConfig::fast_churn(400, 50.0, Nanos::from_secs(20), 5);
        let (cluster, workload) = run_halo(cfg, 5);
        // Population stays near the target: arrivals balance departures.
        let live = workload.live_players();
        assert!(
            (300..=520).contains(&live),
            "live players {live} (target 400)"
        );
        let stats = workload.stats();
        assert!(
            stats.games_ended > 0,
            "fast churn must end games: {stats:?}"
        );
        assert!(stats.players_left > 0);
        assert!(cluster.metrics.completed > 500);
    }

    #[test]
    fn graph_churn_rate_matches_paper_at_paper_params() {
        // At paper parameters the communication graph changes ~1%/min:
        // arrival rate = N / (4 games * 25 min) = 1% of N per minute.
        let cfg = HaloConfig::paper_scale(100_000, 6000.0, Nanos::from_secs(60), 1);
        let per_minute = cfg.arrival_rate() * 60.0;
        let pct = per_minute / cfg.total_players as f64 * 100.0;
        assert!(
            (0.8..1.2).contains(&pct),
            "churn {pct}% of players per minute"
        );
    }

    #[test]
    fn idle_pool_hovers_at_target() {
        let cfg = HaloConfig::fast_churn(800, 20.0, Nanos::from_secs(15), 9);
        let (_cluster, workload) = run_halo(cfg, 9);
        let pool = workload.state.borrow().pool.len();
        let target = workload.state.borrow().cfg.idle_pool_target;
        assert!(
            pool <= target + 8,
            "pool {pool} should hover at target {target}"
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let cfg = HaloConfig::fast_churn(200, 30.0, Nanos::from_secs(8), 11);
        let (a, wa) = run_halo(cfg, 11);
        let (b, wb) = run_halo(cfg, 11);
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.remote_messages, b.metrics.remote_messages);
        assert_eq!(wa.stats(), wb.stats());
    }

    #[test]
    fn remote_fraction_is_high_under_random_placement() {
        // The §3 claim: ~90% of actor-to-actor messages are remote with
        // random placement on 10 servers.
        let cfg = HaloConfig::paper_scale(2_000, 200.0, Nanos::from_secs(10), 13);
        let (cluster, _) = run_halo(cfg, 13);
        let fraction = cluster.metrics.remote_fraction();
        assert!(fraction > 0.8, "remote fraction {fraction} should be ~0.9");
    }
}
