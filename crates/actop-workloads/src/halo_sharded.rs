//! The Halo Presence workload on the sharded runtime backend.
//!
//! Same application logic and lifecycle model as [`crate::halo`] — the
//! request handlers literally share `halo_reaction` — adapted to the
//! conservative-parallel execution discipline of
//! `actop_runtime::sharded`:
//!
//! * The lifecycle state lives in an `Arc<PhaseCell<HaloState>>`. Request
//!   handlers (running concurrently on shard workers) only *read* it; all
//!   mutation (arrivals, matchmaking, game endings) happens in serial-phase
//!   global events, so the window-phase reads are race-free.
//! * Client requests are submitted by a batched pump: every millisecond a
//!   global event pre-draws the Poisson arrivals of the next batch and
//!   injects them with their exact timestamps. Per-request globals would
//!   force a barrier per request and serialize the run; the batch keeps
//!   windows wide. The only semantic difference from the sequential
//!   driver is that a batch's target players are sampled from the alive
//!   set at the batch boundary (at most 1 ms stale) — statistically
//!   irrelevant and equally deterministic.
//! * The driver draws from its own streams (`0x41` targets and gaps,
//!   `0x42` gateway choice, `0x43` client network delay), so the draw
//!   sequence is independent of shard count by construction.

use std::sync::Arc;

use actop_runtime::sharded::{submit_client_request_sharded, ShardedCluster};
use actop_runtime::{ActorId, Reaction, ShardApp};
use actop_sim::{ConservativeRunner, DetRng, GlobalCtx, Nanos, PhaseCell};

use crate::halo::{
    halo_reaction, player_actor, validate_config, HaloConfig, HaloState, HaloStats, TAG_STATUS,
};

/// Width of one request-pump batch of pre-drawn client arrivals.
const PUMP_INTERVAL_NS: u64 = 1_000_000;

/// The request-handler half: reads the shared lifecycle state, defers all
/// logic to [`halo_reaction`].
struct ShardHaloApp {
    state: Arc<PhaseCell<HaloState>>,
    continuation_cpu_ns: f64,
}

impl ShardApp for ShardHaloApp {
    fn on_request(&self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        // SAFETY: lifecycle state is mutated only by serial-phase globals;
        // during windows (where handlers run) it is read-only.
        let state = unsafe { self.state.get() };
        halo_reaction(state, actor, tag, rng)
    }

    fn continuation_cpu_ns(&self) -> f64 {
        self.continuation_cpu_ns
    }
}

/// The built sharded Halo Presence workload.
pub struct ShardedHaloWorkload {
    state: Arc<PhaseCell<HaloState>>,
}

impl ShardedHaloWorkload {
    /// Creates the workload and its application logic.
    pub fn build(cfg: HaloConfig) -> (Box<dyn ShardApp>, ShardedHaloWorkload) {
        validate_config(&cfg);
        let state = Arc::new(PhaseCell::new(HaloState::new(cfg)));
        let app = Box::new(ShardHaloApp {
            state: Arc::clone(&state),
            continuation_cpu_ns: cfg.continuation_cpu_ns,
        });
        (app, ShardedHaloWorkload { state })
    }

    /// Current lifecycle statistics. Call only while the runner is idle
    /// (before or after `run_until`).
    pub fn stats(&self) -> HaloStats {
        // SAFETY: no window phase is live while the runner is idle.
        unsafe { self.state.get() }.stats
    }

    /// Number of currently live players. Call only while the runner is
    /// idle.
    pub fn live_players(&self) -> usize {
        // SAFETY: as in `stats`.
        unsafe { self.state.get() }.alive.len()
    }

    /// Number of currently running games. Call only while the runner is
    /// idle.
    pub fn live_games(&self) -> usize {
        // SAFETY: as in `stats`.
        unsafe { self.state.get() }.games.len()
    }

    /// Schedules pre-population, player arrivals, matchmaking churn, and
    /// the batched client request pump as serial-phase globals.
    pub fn install(&self, runner: &mut ConservativeRunner<ShardedCluster>) {
        let state = Arc::clone(&self.state);
        // SAFETY: the runner has not started; we have exclusive access.
        let seed = unsafe { self.state.get() }.cfg.seed;
        runner.schedule_global(Nanos::ZERO, move |ctx| {
            prepopulate(&state, ctx);
            arrival_tick(&state, ctx);
            let pump = Pump {
                state: Arc::clone(&state),
                rng_req: DetRng::stream(seed, 0x41),
                rng_gateway: DetRng::stream(seed, 0x42),
                rng_net: DetRng::stream(seed, 0x43),
                next_at: Nanos::ZERO,
                next_request: 0,
            };
            request_pump(pump, ctx);
        });
    }
}

/// Creates the steady-state population at time zero, exactly as the
/// sequential driver does (same state RNG stream, same draw order).
fn prepopulate(state: &Arc<PhaseCell<HaloState>>, ctx: &mut GlobalCtx<'_, ShardedCluster>) {
    let mut ends = Vec::new();
    {
        // SAFETY: serial phase (inside a global event).
        let st = unsafe { state.get_mut() };
        let total = st.cfg.total_players;
        for _ in 0..total {
            let p = st.new_player();
            // Pre-populated players are mid-session: their remaining game
            // count is residual (uniform in [1, max]), otherwise departures
            // would lag arrivals and the population would overshoot.
            let hi = st.cfg.games_per_player.1 as u64;
            let remaining = st.rng.range_inclusive(1, hi) as u32;
            if let Some(info) = st.players.get_mut(&p) {
                info.games_left = remaining;
            }
        }
        // Leave the pool at its target; everyone else plays.
        while st.can_form_game() {
            let g = st.form_game();
            // Residual lifetime: uniform over a full game duration.
            let full = st.game_duration();
            let residual = Nanos::from_nanos(st.rng.range_inclusive(1, full.as_nanos().max(2)));
            ends.push((g, residual));
        }
    }
    for (g, at) in ends {
        let state = Arc::clone(state);
        ctx.schedule_global(at, move |ctx| game_over(&state, ctx, g));
    }
}

/// One player arrives; matchmaking may start games.
fn arrival_tick(state: &Arc<PhaseCell<HaloState>>, ctx: &mut GlobalCtx<'_, ShardedCluster>) {
    let now = ctx.now;
    let (gap, new_games, duration_end) = {
        // SAFETY: serial phase.
        let st = unsafe { state.get_mut() };
        st.new_player();
        let mut new_games = Vec::new();
        while st.can_form_game() {
            let g = st.form_game();
            let d = st.game_duration();
            new_games.push((g, d));
        }
        let rate = st.cfg.arrival_rate();
        let gap = Nanos::from_secs_f64(st.rng.exp(1.0 / rate));
        (gap, new_games, st.cfg.duration)
    };
    for (g, d) in new_games {
        let state = Arc::clone(state);
        ctx.schedule_global(now + d, move |ctx| game_over(&state, ctx, g));
    }
    if now + gap < duration_end {
        let state = Arc::clone(state);
        ctx.schedule_global(now + gap, move |ctx| arrival_tick(&state, ctx));
    }
}

/// A game ends: members leave or re-enter the pool; matchmaking continues.
fn game_over(
    state: &Arc<PhaseCell<HaloState>>,
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    game: u64,
) {
    let now = ctx.now;
    let new_games = {
        // SAFETY: serial phase.
        let st = unsafe { state.get_mut() };
        let Some(members) = st.games.remove(&game) else {
            return;
        };
        st.stats.games_ended += 1;
        for p in members {
            let Some(info) = st.players.get_mut(&p) else {
                continue;
            };
            info.game = None;
            info.games_left = info.games_left.saturating_sub(1);
            if info.games_left == 0 {
                st.players.remove(&p);
                st.remove_alive(p);
                st.stats.players_left += 1;
            } else {
                st.pool.push(p);
            }
        }
        let mut new_games = Vec::new();
        while st.can_form_game() {
            let g = st.form_game();
            let d = st.game_duration();
            new_games.push((g, d));
        }
        new_games
    };
    for (g, d) in new_games {
        let state = Arc::clone(state);
        ctx.schedule_global(now + d, move |ctx| game_over(&state, ctx, g));
    }
}

/// Everything the self-rescheduling request pump carries between batches.
struct Pump {
    state: Arc<PhaseCell<HaloState>>,
    /// Target picks and inter-arrival gaps.
    rng_req: DetRng,
    /// Gateway selection per request.
    rng_gateway: DetRng,
    /// Client-to-gateway network delay per request.
    rng_net: DetRng,
    /// Timestamp of the next (already drawn into) arrival slot.
    next_at: Nanos,
    /// Monotone request serial.
    next_request: u64,
}

/// The open-loop client status-request stream, one batch per call.
fn request_pump(mut pump: Pump, ctx: &mut GlobalCtx<'_, ShardedCluster>) {
    let batch_end = ctx.now + Nanos::from_nanos(PUMP_INTERVAL_NS);
    let (rate, bytes, duration_end) = {
        // SAFETY: serial phase.
        let cfg = &unsafe { pump.state.get() }.cfg;
        (cfg.request_rate, cfg.request_bytes, cfg.duration)
    };
    while pump.next_at < batch_end && pump.next_at < duration_end {
        let target = {
            // SAFETY: serial phase.
            let st = unsafe { pump.state.get() };
            if st.alive.is_empty() {
                None
            } else {
                Some(st.alive[pump.rng_req.below(st.alive.len())])
            }
        };
        if let Some(player) = target {
            let request = pump.next_request;
            pump.next_request += 1;
            submit_client_request_sharded(
                ctx,
                pump.next_at,
                player_actor(player),
                TAG_STATUS,
                bytes,
                request,
                &mut pump.rng_gateway,
                &mut pump.rng_net,
            );
        }
        let gap = Nanos::from_secs_f64(pump.rng_req.exp(1.0 / rate));
        pump.next_at += gap;
    }
    if pump.next_at < duration_end {
        ctx.schedule_global(batch_end, move |ctx| request_pump(pump, ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::sharded::{build_sharded, install_sharded_hooks, sharded_lookahead};
    use actop_runtime::{ClusterMetrics, RuntimeConfig};

    fn run_sharded_halo(
        cfg: HaloConfig,
        rt_seed: u64,
        shards: usize,
        threads: usize,
    ) -> (ClusterMetrics, HaloStats, usize) {
        let (app, workload) = ShardedHaloWorkload::build(cfg);
        let rt = RuntimeConfig::paper_testbed(rt_seed);
        let series_bin = rt.series_bin_ns;
        let lookahead = sharded_lookahead(&rt);
        let worlds = build_sharded(rt, app, shards);
        let mut runner = ConservativeRunner::new(worlds, lookahead);
        install_sharded_hooks(&mut runner);
        workload.install(&mut runner);
        // Run past the request stream's end so in-flight requests drain
        // (the message-conservation assertions need a quiesced cluster).
        runner.run_until(cfg.duration + Nanos::from_millis(100), threads);
        let mut merged = ClusterMetrics::new(series_bin);
        for cell in runner.cells() {
            merged.merge_from(cell.world.metrics());
        }
        (merged, workload.stats(), workload.live_players())
    }

    #[test]
    fn sharded_halo_completes_requests_with_full_fanout() {
        let mut cfg = HaloConfig::paper_scale(64, 200.0, Nanos::from_millis(400), 3);
        cfg.idle_pool_target = 0; // Everyone in games: full 18-message shape.
        let (m, _, _) = run_sharded_halo(cfg, 3, 2, 2);
        assert!(m.completed > 10, "completed {}", m.completed);
        let actor_msgs = m.remote_messages + m.local_messages;
        assert_eq!(
            actor_msgs,
            m.completed * 18,
            "18 actor messages per status request"
        );
    }

    #[test]
    fn sharded_halo_identical_across_shard_counts() {
        let cfg = HaloConfig::fast_churn(200, 300.0, Nanos::from_secs(2), 7);
        let (base_m, base_stats, base_live) = run_sharded_halo(cfg, 7, 1, 1);
        assert!(base_m.completed > 100);
        assert!(base_stats.games_ended > 0, "fast churn must end games");
        for (shards, threads) in [(2, 2), (4, 3)] {
            let (m, stats, live) = run_sharded_halo(cfg, 7, shards, threads);
            assert_eq!(base_m.completed, m.completed, "shards={shards}");
            assert_eq!(base_m.submitted, m.submitted);
            assert_eq!(base_m.remote_messages, m.remote_messages);
            assert_eq!(base_m.local_messages, m.local_messages);
            assert_eq!(
                base_m.e2e_latency.summary(),
                m.e2e_latency.summary(),
                "latency distribution diverged at shards={shards}"
            );
            assert_eq!(base_stats, stats);
            assert_eq!(base_live, live);
        }
    }
}
