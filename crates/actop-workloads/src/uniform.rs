//! Single-actor-type request/reply workloads (Heartbeat and Counter).
//!
//! Clients send requests to uniformly random actors; each handler burns a
//! fixed CPU cost (optionally blocking on a synchronous call) and replies.
//! This is the workload shape of the paper's Heartbeat service (§6.2) and
//! the counter microbenchmark behind Fig. 4 and Fig. 5.

use actop_runtime::{ActorId, AppLogic, Cluster, Reaction};
use actop_sim::{DetRng, Engine, Nanos};

/// Configuration of a uniform request/reply workload.
#[derive(Debug, Clone, Copy)]
pub struct UniformConfig {
    /// Number of distinct actors.
    pub actors: u64,
    /// Open-loop Poisson request rate, requests per second.
    pub request_rate: f64,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Response payload bytes.
    pub reply_bytes: u64,
    /// Handler CPU cost, nanoseconds.
    pub cpu_ns: f64,
    /// Handler synchronous-blocking time, nanoseconds (0 = fully async).
    pub blocking_ns: f64,
    /// How long clients keep issuing requests.
    pub duration: Nanos,
    /// Workload seed.
    pub seed: u64,
}

/// The Heartbeat service of §6.2: a monitoring service whose actors store a
/// periodically updated status. Defaults match the single-server
/// experiment at the given request rate.
pub fn heartbeat(request_rate: f64, duration: Nanos, seed: u64) -> UniformConfig {
    UniformConfig {
        actors: 8_000,
        request_rate,
        request_bytes: 700,
        reply_bytes: 300,
        cpu_ns: 150_000.0,
        blocking_ns: 0.0,
        duration,
        seed,
    }
}

/// The §3 counter microbenchmark: 8K actors, an increment per request,
/// 15K requests/second in the paper's breakdown experiment. The handler is
/// genuinely light (a counter increment plus runtime bookkeeping); the
/// heavy stages are serialization on the receive and send paths, as in
/// Orleans.
pub fn counter(request_rate: f64, duration: Nanos, seed: u64) -> UniformConfig {
    UniformConfig {
        actors: 8_000,
        request_rate,
        request_bytes: 600,
        reply_bytes: 600,
        cpu_ns: 60_000.0,
        blocking_ns: 0.0,
        duration,
        seed,
    }
}

/// The built workload: the app half and the driver half.
pub struct UniformWorkload {
    config: UniformConfig,
}

struct UniformApp {
    cpu_ns: f64,
    blocking_ns: f64,
    reply_bytes: u64,
}

impl AppLogic for UniformApp {
    fn on_request(&mut self, _actor: ActorId, _tag: u32, rng: &mut DetRng) -> Reaction {
        // Exponential service-time jitter around the configured mean.
        Reaction {
            cpu_ns: rng.exp(self.cpu_ns),
            blocking_ns: self.blocking_ns,
            outcome: actop_runtime::Outcome::Reply {
                bytes: self.reply_bytes,
            },
        }
    }
}

impl UniformWorkload {
    /// Creates the workload and its application logic.
    pub fn build(config: UniformConfig) -> (Box<dyn AppLogic>, UniformWorkload) {
        assert!(config.actors > 0, "need at least one actor");
        assert!(config.request_rate > 0.0, "need a positive request rate");
        let app = Box::new(UniformApp {
            cpu_ns: config.cpu_ns,
            blocking_ns: config.blocking_ns,
            reply_bytes: config.reply_bytes,
        });
        (app, UniformWorkload { config })
    }

    /// Schedules the open-loop Poisson request stream.
    pub fn install(&self, engine: &mut Engine<Cluster>) {
        let config = self.config;
        let rng = DetRng::stream(config.seed, 0x10);
        engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
            request_tick(c, e, config, rng);
        });
    }
}

fn request_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    config: UniformConfig,
    mut rng: DetRng,
) {
    let actor = ActorId(rng.range_inclusive(0, config.actors - 1));
    cluster.submit_client_request(engine, actor, 0, config.request_bytes);
    let gap = Nanos::from_secs_f64(rng.exp(1.0 / config.request_rate));
    if engine.now() + gap < config.duration {
        engine.schedule_after(gap, move |c: &mut Cluster, e| {
            request_tick(c, e, config, rng);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::RuntimeConfig;

    #[test]
    fn counter_workload_runs_to_completion() {
        let config = counter(2_000.0, Nanos::from_secs(2), 7);
        let (app, workload) = UniformWorkload::build(config);
        let mut cluster = Cluster::new(RuntimeConfig::single_server(7), app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        engine.run(&mut cluster);
        // ~4000 requests expected over 2 s at 2 kHz.
        assert!(
            (3_500..4_500).contains(&(cluster.metrics.submitted as i64)),
            "submitted {}",
            cluster.metrics.submitted
        );
        assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
        assert!(cluster.is_drained());
    }

    #[test]
    fn blocking_variant_holds_threads_not_cpu() {
        let mut config = heartbeat(500.0, Nanos::from_secs(1), 9);
        config.blocking_ns = 2_000_000.0; // 2 ms synchronous wait.
        let (app, workload) = UniformWorkload::build(config);
        let mut cluster = Cluster::new(RuntimeConfig::single_server(9), app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        engine.run(&mut cluster);
        assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
        // Latency must include the blocking wait.
        assert!(cluster.metrics.e2e_latency.quantile(0.5) > 2_000_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let config = counter(1_000.0, Nanos::from_secs(1), 21);
            let (app, workload) = UniformWorkload::build(config);
            let mut cluster = Cluster::new(RuntimeConfig::single_server(21), app);
            let mut engine: Engine<Cluster> = Engine::new();
            workload.install(&mut engine);
            engine.run(&mut cluster);
            (
                cluster.metrics.submitted,
                cluster.metrics.e2e_latency.quantile(0.99),
            )
        };
        assert_eq!(run(), run());
    }
}
