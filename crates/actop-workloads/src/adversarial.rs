//! Adversarial demand generators for the repartitioning bake-off.
//!
//! Each generator stresses a different weakness of an online
//! repartitioner:
//!
//! * [`DemandPattern::Ring`] — every actor talks to its ring successor.
//!   The optimum is contiguous segments (cut = one edge per server); the
//!   lower bounds for online graph partitioning are proved on exactly
//!   this demand family, which makes it the competitive-ratio fixture.
//! * [`DemandPattern::RotatingHotspot`] — a dense clique of actors that
//!   jumps to the next window of the ID space every period. A partitioner
//!   that chases the clique pays a migration wave per period and the
//!   clique is gone before the wave amortizes.
//! * [`DemandPattern::PairChurn`] — a perfect matching of actor pairs,
//!   redrawn every period. Co-locating a pair saves exactly one edge of
//!   traffic for at most one period; with a realistic transfer window the
//!   move never pays for itself, so a migration-cost-aware objective
//!   should sit still while a cost-oblivious one thrashes.
//!
//! The app half is deliberately light (a fan-out of one or two calls plus
//! a small CPU burn): the bake-off measures communication and migration
//! cost, not compute. The demand state lives in an `Rc<RefCell<..>>`
//! shared between the app and the driver, exactly like [`crate::halo`].

use std::cell::RefCell;
use std::rc::Rc;

use actop_runtime::{ActorId, AppLogic, Call, Cluster, Reaction};
use actop_sim::{DetRng, Engine, Nanos};

/// Tag of a client-facing request (fans out to the actor's demand peers).
pub const TAG_FRONT: u32 = 0;
/// Tag of a peer call (replies immediately).
pub const TAG_PEER: u32 = 1;

/// Which adversarial demand family drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandPattern {
    /// Actor `i` calls actor `(i + 1) mod n` on every request.
    Ring,
    /// A clique of `clique` consecutive actor IDs is hot; the window
    /// advances by its own width every `period`.
    RotatingHotspot {
        /// Hot-window width in actors.
        clique: u64,
        /// How long a window stays hot before rotating.
        period: Nanos,
    },
    /// A perfect matching of actor pairs, redrawn every `period`.
    PairChurn {
        /// How long a matching lasts.
        period: Nanos,
    },
}

impl DemandPattern {
    /// The stable name used in bench artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            DemandPattern::Ring => "ring",
            DemandPattern::RotatingHotspot { .. } => "hotspot",
            DemandPattern::PairChurn { .. } => "churn",
        }
    }
}

/// Configuration of an adversarial workload run.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialConfig {
    /// Number of distinct actors.
    pub actors: u64,
    /// Open-loop Poisson client request rate, requests per second.
    pub request_rate: f64,
    /// How long clients keep issuing requests.
    pub duration: Nanos,
    /// Workload seed.
    pub seed: u64,
    /// The demand family.
    pub pattern: DemandPattern,
}

impl AdversarialConfig {
    /// A bake-off-scale config for `pattern`: enough actors that every
    /// server hosts hundreds, with periods a small multiple of the
    /// partition-agent interval so the adversary outpaces naive chasing.
    pub fn bakeoff(pattern: DemandPattern, duration: Nanos, seed: u64) -> Self {
        AdversarialConfig {
            actors: 4_000,
            request_rate: 2_000.0,
            duration,
            seed,
            pattern,
        }
    }
}

/// Mutable demand state shared by the app and the driver.
struct DemandState {
    /// `PairChurn`: `partner[i]` is `i`'s current peer (an involution).
    partner: Vec<u64>,
    /// `RotatingHotspot`: first actor ID of the hot window.
    hot_start: u64,
}

struct AdversarialApp {
    config: AdversarialConfig,
    state: Rc<RefCell<DemandState>>,
}

impl AppLogic for AdversarialApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        if tag == TAG_PEER {
            return Reaction::reply(rng.exp(5_000.0), 200);
        }
        let n = self.config.actors;
        let calls: Vec<Call> = match self.config.pattern {
            DemandPattern::Ring => vec![Call {
                to: ActorId((actor.0 + 1) % n),
                tag: TAG_PEER,
                bytes: 600,
            }],
            DemandPattern::RotatingHotspot { clique, .. } => {
                // Two distinct peers inside the hot window make the
                // window a dense clique in the sketch.
                let start = self.state.borrow().hot_start;
                let mut peers = Vec::with_capacity(2);
                while peers.len() < 2 {
                    let p = start + rng.range_inclusive(0, clique - 1);
                    let p = ActorId(p % n);
                    if p != actor && !peers.contains(&p) {
                        peers.push(p);
                    }
                }
                peers
                    .into_iter()
                    .map(|to| Call {
                        to,
                        tag: TAG_PEER,
                        bytes: 600,
                    })
                    .collect()
            }
            DemandPattern::PairChurn { .. } => {
                let partner = self.state.borrow().partner[actor.0 as usize];
                vec![Call {
                    to: ActorId(partner),
                    tag: TAG_PEER,
                    bytes: 600,
                }]
            }
        };
        Reaction::fan_out(rng.exp(20_000.0), calls, 300)
    }
}

/// The built workload: the app half and the driver half.
pub struct AdversarialWorkload {
    config: AdversarialConfig,
    state: Rc<RefCell<DemandState>>,
}

impl AdversarialWorkload {
    /// Creates the workload and its application logic.
    pub fn build(config: AdversarialConfig) -> (Box<dyn AppLogic>, AdversarialWorkload) {
        assert!(config.actors >= 4, "need at least four actors");
        assert!(config.request_rate > 0.0, "need a positive request rate");
        if let DemandPattern::RotatingHotspot { clique, .. } = config.pattern {
            assert!(
                clique >= 3 && clique <= config.actors,
                "hot window must hold 3..=actors actors"
            );
        }
        let mut rng = DetRng::stream(config.seed, 0x20);
        let state = Rc::new(RefCell::new(DemandState {
            partner: draw_matching(config.actors, &mut rng),
            hot_start: 0,
        }));
        let app = Box::new(AdversarialApp {
            config,
            state: Rc::clone(&state),
        });
        (app, AdversarialWorkload { config, state })
    }

    /// Schedules the client request stream and the demand rotation.
    pub fn install(&self, engine: &mut Engine<Cluster>) {
        let config = self.config;
        let rng = DetRng::stream(config.seed, 0x21);
        let state = Rc::clone(&self.state);
        engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
            request_tick(c, e, config, Rc::clone(&state), rng);
        });
        match config.pattern {
            DemandPattern::Ring => {}
            DemandPattern::RotatingHotspot { period, .. } => {
                let state = Rc::clone(&self.state);
                engine.schedule(period, move |c: &mut Cluster, e| {
                    rotate_tick(c, e, config, state);
                });
            }
            DemandPattern::PairChurn { period } => {
                let state = Rc::clone(&self.state);
                let rng = DetRng::stream(config.seed, 0x22);
                engine.schedule(period, move |c: &mut Cluster, e| {
                    churn_tick(c, e, config, state, rng);
                });
            }
        }
    }
}

/// A deterministic perfect matching: shuffle the IDs, pair adjacent
/// entries. Odd populations leave the last actor self-paired (its calls
/// are local no-ops for the partitioner, which is fine).
fn draw_matching(actors: u64, rng: &mut DetRng) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..actors).collect();
    // Fisher-Yates off the deterministic stream.
    for i in (1..ids.len()).rev() {
        let j = rng.range_inclusive(0, i as u64) as usize;
        ids.swap(i, j);
    }
    let mut partner = vec![0u64; actors as usize];
    for pair in ids.chunks(2) {
        match *pair {
            [a, b] => {
                partner[a as usize] = b;
                partner[b as usize] = a;
            }
            [a] => partner[a as usize] = a,
            _ => unreachable!("chunks(2)"),
        }
    }
    partner
}

fn request_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    config: AdversarialConfig,
    state: Rc<RefCell<DemandState>>,
    mut rng: DetRng,
) {
    let target = match config.pattern {
        // Hot-window actors receive the traffic; everyone else is cold.
        DemandPattern::RotatingHotspot { clique, .. } => {
            let start = state.borrow().hot_start;
            (start + rng.range_inclusive(0, clique - 1)) % config.actors
        }
        _ => rng.range_inclusive(0, config.actors - 1),
    };
    cluster.submit_client_request(engine, ActorId(target), TAG_FRONT, 500);
    let gap = Nanos::from_secs_f64(rng.exp(1.0 / config.request_rate));
    if engine.now() + gap < config.duration {
        engine.schedule_after(gap, move |c: &mut Cluster, e| {
            request_tick(c, e, config, state, rng);
        });
    }
}

fn rotate_tick(
    _cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    config: AdversarialConfig,
    state: Rc<RefCell<DemandState>>,
) {
    let DemandPattern::RotatingHotspot { clique, period } = config.pattern else {
        unreachable_pattern()
    };
    {
        let mut s = state.borrow_mut();
        s.hot_start = (s.hot_start + clique) % config.actors;
    }
    if engine.now() + period < config.duration {
        engine.schedule_after(period, move |c: &mut Cluster, e| {
            rotate_tick(c, e, config, state);
        });
    }
}

fn churn_tick(
    _cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    config: AdversarialConfig,
    state: Rc<RefCell<DemandState>>,
    mut rng: DetRng,
) {
    let DemandPattern::PairChurn { period } = config.pattern else {
        unreachable_pattern()
    };
    state.borrow_mut().partner = draw_matching(config.actors, &mut rng);
    if engine.now() + period < config.duration {
        engine.schedule_after(period, move |c: &mut Cluster, e| {
            churn_tick(c, e, config, state, rng);
        });
    }
}

fn unreachable_pattern() -> ! {
    unreachable!("tick installed only for its own pattern")
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_runtime::RuntimeConfig;

    fn run(pattern: DemandPattern) -> Cluster {
        let mut config = AdversarialConfig::bakeoff(pattern, Nanos::from_secs(3), 11);
        config.actors = 400;
        config.request_rate = 800.0;
        let (app, workload) = AdversarialWorkload::build(config);
        let mut rt = RuntimeConfig::paper_testbed(11);
        rt.servers = 4;
        let mut cluster = Cluster::new(rt, app);
        let mut engine: Engine<Cluster> = Engine::new();
        workload.install(&mut engine);
        engine.run(&mut cluster);
        cluster
    }

    #[test]
    fn ring_runs_to_completion() {
        let cluster = run(DemandPattern::Ring);
        assert!(cluster.metrics.submitted > 1_500);
        assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
        assert!(cluster.is_drained());
    }

    #[test]
    fn hotspot_rotates() {
        let cluster = run(DemandPattern::RotatingHotspot {
            clique: 32,
            period: Nanos::from_millis(500),
        });
        assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
        assert!(cluster.is_drained());
    }

    #[test]
    fn churn_redraws_pairs() {
        let cluster = run(DemandPattern::PairChurn {
            period: Nanos::from_millis(500),
        });
        assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
        assert!(cluster.is_drained());
    }

    #[test]
    fn matching_is_an_involution() {
        let mut rng = DetRng::new(3);
        for n in [4u64, 5, 100, 101] {
            let partner = draw_matching(n, &mut rng);
            let mut selfies = 0;
            for i in 0..n as usize {
                let p = partner[i] as usize;
                assert_eq!(partner[p] as usize, i, "partner of partner is self");
                if p == i {
                    selfies += 1;
                }
            }
            assert_eq!(selfies, (n % 2) as usize, "odd population leaves one");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let fingerprint = |c: &Cluster| {
            (
                c.metrics.submitted,
                c.metrics.completed,
                c.metrics.e2e_latency.quantile(0.99),
            )
        };
        let a = run(DemandPattern::PairChurn {
            period: Nanos::from_millis(500),
        });
        let b = run(DemandPattern::PairChurn {
            period: Nanos::from_millis(500),
        });
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
