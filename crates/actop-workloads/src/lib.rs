//! The workloads of the ActOp evaluation (§3, §6).
//!
//! * [`halo`] — **Halo Presence**: games and players as actors, clients
//!   querying player status; each request triggers the paper's 18-message
//!   fan-out through the player's game. The game lifecycle (matchmaking
//!   from an idle pool, 20–30 minute games, 3–5 games per player, Poisson
//!   player arrivals) produces the ~1%-per-minute communication-graph
//!   churn that stresses the partitioner.
//! * [`uniform`] — single-actor-type request/reply services:
//!   [`uniform::heartbeat`] (the §6.2 thread-allocation benchmark) and
//!   [`uniform::counter`] (the §3 latency-breakdown microbenchmark).
//! * [`scale`] — million-player skewed-traffic generators (Zipf
//!   celebrity, flash crowd, diurnal wave, rotating hotspot) that drive
//!   the hot-actor replication evaluation.
//! * [`adversarial`] — demand families built to defeat online
//!   repartitioners (ring demands, a rotating hot clique, repeated-pair
//!   churn); the fixtures of the repartitioning bake-off.
//!
//! Each workload builds two halves: an [`actop_runtime::AppLogic`]
//! implementation handed to the cluster, and a *driver* that schedules
//! client arrivals and lifecycle churn on the simulation engine. The halves
//! share state through an `Rc<RefCell<..>>` (the simulation is
//! single-threaded).

pub mod adversarial;
pub mod halo;
pub mod halo_sharded;
pub mod scale;
pub mod uniform;

pub use adversarial::{AdversarialConfig, AdversarialWorkload, DemandPattern};
pub use halo::{HaloConfig, HaloWorkload};
pub use halo_sharded::ShardedHaloWorkload;
pub use scale::{
    MemoryAudit, ScaleConfig, ScaleTraffic, ScaleWorkload, ShardedScaleWorkload, TrafficShape,
};
pub use uniform::{counter, heartbeat, UniformConfig, UniformWorkload};
