//! Invariant-checker acceptance against *real* runtime traces: a fully
//! instrumented run under a crash fault plan comes out clean, the JSONL
//! export round-trips to the same verdict, and deliberately corrupted
//! variants of the same trace are rejected with precise reports.

use actop_chaos::{install_plan, FaultPlan};
use actop_core::experiment::run_steady_state;
use actop_runtime::{Cluster, DetectorConfig, RuntimeConfig, TraceConfig};
use actop_sim::{Engine, Nanos};
use actop_trace::{spans_jsonl, HopKind, SpanEvent};
use actop_verify::{check_events, check_jsonl, CheckerConfig};
use actop_workloads::uniform::{self, UniformWorkload};

const SERVERS: usize = 4;
const WARMUP: Nanos = Nanos::from_secs(2);
const MEASURE: Nanos = Nanos::from_secs(8);
const TIMEOUT: Nanos = Nanos::from_secs(1);
const TRANSFER: Nanos = Nanos::from_millis(2);

/// One instrumented run under a single-crash plan; returns the recorded
/// spans, their JSONL export, and the matching checker config.
fn crashy_run(seed: u64) -> (Vec<SpanEvent>, String, CheckerConfig) {
    let plan = FaultPlan::single_crash(1, Nanos::from_secs(2), Nanos::from_secs(3));
    let duration = WARMUP + MEASURE;
    let (app, workload) = UniformWorkload::build(uniform::counter(800.0, duration, seed));
    let mut rt = RuntimeConfig::paper_testbed(seed);
    rt.servers = SERVERS;
    rt.request_timeout = Some(TIMEOUT);
    rt.migration_transfer = Some(TRANSFER);
    rt.detector = Some(DetectorConfig::default());
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0,
        seed,
        ..TraceConfig::default()
    });
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    cluster.install_heartbeats(&mut engine, duration);
    install_plan(&mut engine, &cluster, &plan, WARMUP);
    run_steady_state(&mut engine, &mut cluster, WARMUP, MEASURE);
    assert_eq!(cluster.trace.dropped_spans(), 0, "trace truncated");

    let cfg = CheckerConfig {
        crash_windows: plan.crash_windows(SERVERS, WARMUP, duration + Nanos::from_secs(5)),
        migration_transfer: Some(TRANSFER),
        open_at_end_grace: TIMEOUT * 2,
        ..CheckerConfig::default()
    };
    let jsonl = spans_jsonl(&cluster.trace);
    (cluster.trace.spans().to_vec(), jsonl, cfg)
}

#[test]
fn instrumented_crash_run_is_clean_and_round_trips_through_jsonl() {
    let (spans, jsonl, cfg) = crashy_run(99);
    let report = check_events(&spans, &cfg);
    assert!(
        report.is_clean(),
        "real trace flagged: {:?}",
        &report.violations[..report.violations.len().min(5)]
    );
    assert!(report.lifecycles > 1_000, "run too small to mean anything");
    assert_eq!(
        report.lifecycles,
        report.terminals + report.in_flight_at_end,
        "every admitted request is accounted for"
    );
    // The crash actually happened and the machinery reacted to it.
    assert_eq!(report.kind_count("server-fail"), 1);
    assert!(report.kind_count("suspect") > 0, "detector never fired");

    // The exported JSONL is the same trace to the checker.
    let reparsed = check_jsonl(&jsonl, &cfg).expect("export parses");
    assert!(reparsed.is_clean());
    assert_eq!(reparsed.events, report.events);
    assert_eq!(reparsed.kind_counts, report.kind_counts);
}

#[test]
fn dropped_terminal_is_rejected() {
    let (mut spans, _jsonl, cfg) = crashy_run(99);
    // Corrupt: drop a completion from the middle of the run. The request
    // id is a slab slot, so either its reuse trips readmit-without-
    // terminal or, failing that, end-of-trace finds the lifecycle open.
    let victim = spans
        .iter()
        .position(|e| e.kind == HopKind::ClientDone)
        .expect("run completed requests");
    let victim_req = spans[victim].request;
    spans.remove(victim);
    let report = check_events(&spans, &cfg);
    assert!(!report.is_clean(), "dropped terminal went unnoticed");
    let v = &report.violations[0];
    assert!(
        v.rule == "readmit-without-terminal" || v.rule == "missing-terminal",
        "unexpected rule {} ({})",
        v.rule,
        v
    );
    assert_eq!(v.request, victim_req, "report names the wrong request: {v}");
}

#[test]
fn service_during_crash_is_rejected() {
    let (mut spans, _jsonl, cfg) = crashy_run(99);
    // Corrupt: teleport one service span onto the crashed server, inside
    // its down window (plan: server 1 down over warmup+[2s, 3s)).
    let victim = spans
        .iter()
        .position(|e| e.kind == HopKind::Service)
        .expect("run recorded service spans");
    let mid = WARMUP + Nanos::from_millis(2_500);
    spans[victim].server = 1;
    spans[victim].t_start = mid;
    spans[victim].t_end = mid + Nanos::from_micros(80);
    let report = check_events(&spans, &cfg);
    let hit = report
        .violations
        .iter()
        .find(|v| v.rule == "service-during-crash")
        .expect("corruption went unnoticed");
    assert_eq!(hit.request, spans[victim].request);
    assert!(hit.detail.contains("server 1"), "imprecise report: {hit}");
}

#[test]
fn reordered_events_are_rejected() {
    let (mut spans, _jsonl, cfg) = crashy_run(99);
    // Corrupt: swap two same-server service records from different halves
    // of the run.
    let on_server_0: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == HopKind::Service && e.server == 0)
        .map(|(i, _)| i)
        .collect();
    assert!(on_server_0.len() > 100);
    let (a, b) = (on_server_0[10], on_server_0[on_server_0.len() - 10]);
    spans.swap(a, b);
    let report = check_events(&spans, &cfg);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "time-regression"),
        "reordering went unnoticed: {:?}",
        &report.violations[..report.violations.len().min(3)]
    );
}

#[test]
fn fault_free_run_needs_no_crash_windows() {
    // Same workload, no plan, defaults: clean, and no fault machinery in
    // the trace at all.
    let duration = WARMUP + MEASURE;
    let (app, workload) = UniformWorkload::build(uniform::counter(600.0, duration, 5));
    let mut rt = RuntimeConfig::paper_testbed(5);
    rt.servers = SERVERS;
    rt.request_timeout = Some(TIMEOUT);
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0,
        seed: 5,
        ..TraceConfig::default()
    });
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    run_steady_state(&mut engine, &mut cluster, WARMUP, MEASURE);
    let cfg = CheckerConfig {
        open_at_end_grace: TIMEOUT * 2,
        ..CheckerConfig::default()
    };
    let report = check_events(cluster.trace.spans(), &cfg);
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    for kind in ["server-fail", "suspect", "retry", "shed", "timeout"] {
        assert_eq!(report.kind_count(kind), 0, "unexpected {kind} events");
    }
}
