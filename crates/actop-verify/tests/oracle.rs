//! Analytic-oracle acceptance: the DES agrees with queueing theory.
//!
//! Single-thread stages are exact M/M/1 queues, so the paper's Eq. 1
//! prediction must match the simulator within a tight band at low and
//! medium utilization — across several distinct pipeline shapes. Multi-
//! thread stages are M/M/c; the exact Erlang-C form must match, and the
//! pooled Eq. 1 approximation must sit below it (pooling c threads into
//! one fast server is strictly better than c slow servers).

use actop_seda::EmuStageConfig;
use actop_verify::{divergence_curve, validate_pipeline, OracleConfig};

fn single_thread(rates: &[f64]) -> Vec<EmuStageConfig> {
    rates
        .iter()
        .map(|&service_rate| EmuStageConfig {
            service_rate,
            initial_threads: 1,
        })
        .collect()
}

/// Per-stage and end-to-end agreement bound for ρ ≤ 0.7.
const BAND: f64 = 0.10;

#[test]
fn mm1_oracle_holds_across_three_pipeline_shapes() {
    let shapes: [(&str, Vec<EmuStageConfig>); 3] = [
        ("3-stage", single_thread(&[900.0, 1_100.0, 1_000.0])),
        (
            "4-stage",
            single_thread(&[1_500.0, 2_000.0, 1_800.0, 1_600.0]),
        ),
        ("2-stage", single_thread(&[700.0, 950.0])),
    ];
    for (name, stages) in &shapes {
        for &rho in &[0.3, 0.5, 0.7] {
            let point = validate_pipeline(&OracleConfig {
                stages: stages.clone(),
                arrival_rate: OracleConfig::rate_for_rho(stages, rho),
                duration_secs: 150.0,
                seed: 0x0A11CE,
            });
            assert!(point.completed > 1_000, "{name} ρ={rho}: too few events");
            for s in &point.stages {
                assert!(
                    s.mm1_rel_err() < BAND,
                    "{name} ρ={rho} stage {}: predicted {:.6}s measured {:.6}s ({:.1}% off)",
                    s.stage,
                    s.mm1_secs,
                    s.measured_secs,
                    100.0 * s.mm1_rel_err()
                );
                assert!(
                    (s.measured_rho - s.rho).abs() < 0.05,
                    "{name} ρ={rho} stage {}: measured utilization {:.3} vs analytic {:.3}",
                    s.stage,
                    s.measured_rho,
                    s.rho
                );
            }
            assert!(
                point.e2e_rel_err() < BAND,
                "{name} ρ={rho}: e2e predicted {:.6}s measured {:.6}s",
                point.mmc_e2e_secs,
                point.measured_e2e_secs
            );
            // The oracle's Eq. 1 path goes through SedaModel itself.
            assert!((point.model_e2e_secs - point.mm1_e2e_secs).abs() < 1e-9);
        }
    }
}

#[test]
fn mmc_oracle_holds_for_multi_thread_stages() {
    let stages = vec![
        EmuStageConfig {
            service_rate: 500.0,
            initial_threads: 3,
        },
        EmuStageConfig {
            service_rate: 800.0,
            initial_threads: 2,
        },
        EmuStageConfig {
            service_rate: 400.0,
            initial_threads: 4,
        },
    ];
    for &rho in &[0.3, 0.5, 0.7] {
        let point = validate_pipeline(&OracleConfig {
            stages: stages.clone(),
            arrival_rate: OracleConfig::rate_for_rho(&stages, rho),
            duration_secs: 150.0,
            seed: 0xE417A,
        });
        for s in &point.stages {
            assert!(
                s.mmc_rel_err() < BAND,
                "ρ={rho} stage {} ({} threads): M/M/c predicted {:.6}s measured {:.6}s",
                s.stage,
                s.threads,
                s.mmc_secs,
                s.measured_secs
            );
            // Pooling is strictly better: Eq. 1 under-predicts the sojourn
            // of a genuinely multi-threaded stage.
            assert!(
                s.mm1_secs < s.mmc_secs,
                "ρ={rho} stage {}: pooled M/M/1 {:.6}s not below M/M/c {:.6}s",
                s.stage,
                s.mm1_secs,
                s.mmc_secs
            );
        }
    }
}

#[test]
fn divergence_grows_toward_saturation() {
    let stages = single_thread(&[1_000.0, 1_200.0]);
    let rhos = [0.3, 0.5, 0.7, 0.8, 0.9, 0.95];
    let curve = divergence_curve(&stages, &rhos, 120.0, 7);
    assert_eq!(curve.len(), rhos.len());
    for (point, &rho) in curve.iter().zip(&rhos) {
        assert!((point.rho_max - rho).abs() < 1e-9);
        assert!(point.completed > 0);
        if rho <= 0.7 {
            assert!(
                point.e2e_rel_err() < BAND,
                "ρ={rho}: {:.1}% off",
                100.0 * point.e2e_rel_err()
            );
        }
    }
    // Any finite run under-samples the heavy tail near saturation: the
    // error at ρ = 0.95 dwarfs the error at ρ = 0.3. This is the curve
    // `bench_validate` reports.
    let low = curve[0].e2e_rel_err();
    let high = curve[rhos.len() - 1].e2e_rel_err();
    assert!(
        high > low,
        "expected divergence: err(ρ=0.95)={high:.4} vs err(ρ=0.3)={low:.4}"
    );
}
