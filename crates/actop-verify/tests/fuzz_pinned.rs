//! Pinned fuzzer seeds: the exact scenarios CI requires green, runnable
//! as an ordinary test. The `fuzz_scenarios` binary explores beyond these
//! under a wall-clock budget; this test is the regression floor.

use actop_verify::fuzz_one;

/// Keep in sync with ACTOP_FUZZ_SEEDS in `.github/workflows/ci.yml`.
/// Seed 45 draws snapshot=true + replication=true with a 12-fault plan,
/// pinning a snapshot+chaos interleaving. Seed 4 draws every controller
/// dimension on with the cost-aware repartitioning policy, pinning the
/// policy dimension (and its stall-budget invariant) under chaos.
const PINNED: [u64; 8] = [1, 2, 3, 4, 7, 11, 19, 45];

#[test]
fn pinned_fuzz_seeds_are_clean() {
    for &seed in &PINNED {
        let (scenario, outcome) = fuzz_one(seed, 64);
        assert!(
            outcome.is_ok(),
            "seed {seed} failed; shrunk reproducer:\n{}\nfailures: {:?}",
            scenario.describe(),
            outcome.failures
        );
        assert!(outcome.summary.completed > 0, "seed {seed} did no work");
    }
}
