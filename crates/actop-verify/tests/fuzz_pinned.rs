//! Pinned fuzzer seeds: the exact scenarios CI requires green, runnable
//! as an ordinary test. The `fuzz_scenarios` binary explores beyond these
//! under a wall-clock budget; this test is the regression floor.

use actop_verify::fuzz_one;

/// Keep in sync with ACTOP_FUZZ_SEEDS in `.github/workflows/ci.yml`.
const PINNED: [u64; 6] = [1, 2, 3, 7, 11, 19];

#[test]
fn pinned_fuzz_seeds_are_clean() {
    for &seed in &PINNED {
        let (scenario, outcome) = fuzz_one(seed, 64);
        assert!(
            outcome.is_ok(),
            "seed {seed} failed; shrunk reproducer:\n{}\nfailures: {:?}",
            scenario.describe(),
            outcome.failures
        );
        assert!(outcome.summary.completed > 0, "seed {seed} did no work");
    }
}
