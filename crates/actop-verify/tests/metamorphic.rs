//! Metamorphic laws: relations that must hold *between* runs, with no
//! reference to absolute ground truth.
//!
//! 1. Scaling every service rate by `k` (same arrivals) scales each
//!    stage's mean service time by `1/k` and never increases queueing
//!    delay.
//! 2. Adding offered load never decreases mean queueing delay, per stage
//!    or end to end.
//! 3. Relabeling server ids permutes per-server statistics but preserves
//!    every aggregate and the checker verdict.
//! 4. With the failure detector off, healing fault plans leave no
//!    suspicion machinery in the trace and runs are bit-deterministic.

use actop_chaos::{install_plan, CrashWindows, FaultPlan};
use actop_core::experiment::run_steady_state;
use actop_runtime::{Cluster, RuntimeConfig, TraceConfig};
use actop_seda::{run_emulator, EmuController, EmuStageConfig, EmulatorConfig, EmulatorResult};
use actop_sim::{Engine, Nanos};
use actop_verify::{
    check_events, relabel_servers, run_scenario, CheckerConfig, Scenario, TraceDigest,
};
use actop_workloads::uniform::{self, UniformWorkload};

fn pipeline(rates_threads: &[(f64, usize)], arrival_rate: f64) -> EmulatorResult {
    let duration_secs = 120.0;
    run_emulator(&EmulatorConfig {
        stages: rates_threads
            .iter()
            .map(|&(service_rate, initial_threads)| EmuStageConfig {
                service_rate,
                initial_threads,
            })
            .collect(),
        arrival_rate,
        duration_secs,
        control_interval_secs: duration_secs,
        controller: EmuController::Fixed,
        seed: 0x5CA1E,
    })
}

#[test]
fn law1_scaling_service_rates_scales_service_not_wait() {
    let base_stages = [(900.0, 1), (1_200.0, 2), (1_000.0, 1)];
    let k = 2.0;
    let scaled_stages: Vec<(f64, usize)> = base_stages.iter().map(|&(r, c)| (r * k, c)).collect();
    let base = pipeline(&base_stages, 500.0);
    let scaled = pipeline(&scaled_stages, 500.0);
    for (i, (b, s)) in base
        .stage_sojourn
        .iter()
        .zip(&scaled.stage_sojourn)
        .enumerate()
    {
        let ratio = s.mean_service_secs() / b.mean_service_secs();
        assert!(
            (ratio - 1.0 / k).abs() < 0.03 / k,
            "stage {i}: service time scaled by {ratio:.4}, want {:.4}",
            1.0 / k
        );
        assert!(
            s.mean_wait_secs() <= b.mean_wait_secs() * 1.02,
            "stage {i}: faster servers increased queueing ({:.6}s -> {:.6}s)",
            b.mean_wait_secs(),
            s.mean_wait_secs()
        );
    }
    assert!(scaled.latency.mean() < base.latency.mean());
}

#[test]
fn law2_added_load_never_decreases_queueing_delay() {
    let stages = [(900.0, 1), (1_200.0, 2), (1_000.0, 1)];
    let rates = [200.0, 400.0, 600.0, 800.0];
    let runs: Vec<EmulatorResult> = rates.iter().map(|&r| pipeline(&stages, r)).collect();
    for pair in runs.windows(2) {
        for (i, (lo, hi)) in pair[0]
            .stage_sojourn
            .iter()
            .zip(&pair[1].stage_sojourn)
            .enumerate()
        {
            assert!(
                hi.mean_wait_secs() >= lo.mean_wait_secs() * 0.98,
                "stage {i}: more load, less waiting ({:.6}s -> {:.6}s)",
                lo.mean_wait_secs(),
                hi.mean_wait_secs()
            );
        }
        assert!(pair[1].latency.mean() >= pair[0].latency.mean());
    }
}

#[test]
fn law3_relabeling_servers_preserves_aggregates_and_verdict() {
    const SERVERS: usize = 4;
    let warmup = Nanos::from_secs(2);
    let measure = Nanos::from_secs(6);
    let duration = warmup + measure;
    let plan = FaultPlan::single_crash(1, Nanos::from_secs(2), Nanos::from_secs(3));
    let (app, workload) = UniformWorkload::build(uniform::counter(700.0, duration, 17));
    let mut rt = RuntimeConfig::paper_testbed(17);
    rt.servers = SERVERS;
    rt.request_timeout = Some(Nanos::from_secs(1));
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0,
        seed: 17,
        ..TraceConfig::default()
    });
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    install_plan(&mut engine, &cluster, &plan, warmup);
    run_steady_state(&mut engine, &mut cluster, warmup, measure);

    let windows = plan.crash_windows(SERVERS, warmup, duration + Nanos::from_secs(5));
    let cfg = CheckerConfig {
        crash_windows: windows.clone(),
        open_at_end_grace: Nanos::from_secs(2),
        ..CheckerConfig::default()
    };
    let spans = cluster.trace.spans();
    let report = check_events(spans, &cfg);
    assert!(
        report.is_clean(),
        "base run flagged: {:?}",
        report.violations
    );

    // Rotate every server id by one — and the crash windows with them.
    let rotate = |s: u32| (s + 1) % SERVERS as u32;
    let relabeled = relabel_servers(spans, rotate);
    let mut rotated_windows = vec![Vec::new(); SERVERS];
    for s in 0..SERVERS {
        rotated_windows[rotate(s as u32) as usize] = windows.server(s as u32).to_vec();
    }
    let rot_cfg = CheckerConfig {
        crash_windows: CrashWindows {
            windows: rotated_windows,
        },
        ..cfg
    };
    let rot_report = check_events(&relabeled, &rot_cfg);
    assert!(
        rot_report.is_clean(),
        "relabeling changed the verdict: {:?}",
        &rot_report.violations[..rot_report.violations.len().min(3)]
    );
    assert_eq!(rot_report.kind_counts, report.kind_counts);
    assert_eq!(rot_report.lifecycles, report.lifecycles);
    assert_eq!(rot_report.terminals, report.terminals);

    let before = TraceDigest::of(spans);
    let after = TraceDigest::of(&relabeled);
    assert_eq!(before.unlabeled(), after.unlabeled());
    for s in 0..SERVERS as u32 {
        assert_eq!(
            before.server_counts.get(&s),
            after.server_counts.get(&rotate(s)),
            "per-server counts did not permute at server {s}"
        );
    }
}

#[test]
fn law4_detector_off_is_suspicion_free_and_deterministic_under_healing_plans() {
    for seed in [3, 8] {
        let mut sc = Scenario::from_seed(seed);
        sc.detector = false;
        sc.measure_secs = sc.measure_secs.min(5.0);
        sc.plan = FaultPlan::random(
            seed,
            sc.servers as u32,
            Nanos::from_secs_f64(sc.measure_secs),
            3,
        );
        let a = run_scenario(&sc);
        assert!(a.is_ok(), "seed {seed}: {:?}", a.failures);
        assert_eq!(a.report.kind_count("suspect"), 0);
        assert_eq!(a.report.kind_count("unsuspect"), 0);
        assert_eq!(a.summary.false_suspicion_repairs, 0);
        let b = run_scenario(&sc);
        assert_eq!(a.digest, b.digest, "seed {seed}: non-deterministic trace");
        assert_eq!(
            a.summary, b.summary,
            "seed {seed}: non-deterministic summary"
        );
    }
}
