//! Validates a recorded trace file (CI runs this against short
//! instrumented benches).
//!
//! Two formats, auto-detected by the first byte:
//!
//! * Chrome trace-event JSON (`{`...) — structural validation only
//!   (well-formed JSON, required fields, monotone timestamps per track).
//! * `.spans.jsonl` span dumps — full lifecycle invariant checking via
//!   `actop-verify` (per-server monotone time, exactly one terminal per
//!   admitted request, forward-hop cap, and — when a fault plan is
//!   supplied — no service inside a crash window and no migration
//!   transfer over an endpoint crash).
//!
//! Usage:
//!   check_trace <trace.json | trace.spans.jsonl> [options]
//! Options (JSONL mode only):
//!   --plan <file>      fault-plan text (`FaultPlan::to_text` format)
//!   --base-ns <n>      sim time the plan was installed at (default 0)
//!   --horizon-ns <n>   close unrecovered crashes here (default: last
//!                      event time + grace)
//!   --servers <n>      cluster size (default: plan's max server + 1)
//!   --transfer-ns <n>  migration transfer window (default none)
//!   --stall-budget-ns <n>  scored amortization budget per migration:
//!                      flag any commit whose span-measured stall (span
//!                      width, else the transfer window) exceeds it
//!                      (default none)
//!   --grace-ns <n>     open-lifecycle grace at end of trace (default 5 s)
//!
//! Exits nonzero if the file is missing, malformed, or violates any
//! invariant; violations are printed one per line.

use std::process::ExitCode;

use actop_chaos::FaultPlan;
use actop_sim::Nanos;
use actop_trace::validate_chrome_trace;
use actop_verify::{check_jsonl, CheckerConfig};

struct Options {
    path: String,
    plan: Option<String>,
    base_ns: u64,
    horizon_ns: Option<u64>,
    servers: Option<usize>,
    transfer_ns: Option<u64>,
    stall_budget_ns: Option<u64>,
    grace_ns: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        plan: None,
        base_ns: 0,
        horizon_ns: None,
        servers: None,
        transfer_ns: None,
        stall_budget_ns: None,
        grace_ns: None,
    };
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plan" => opts.plan = Some(value(&mut args, "--plan")?),
            "--base-ns" => {
                opts.base_ns = value(&mut args, "--base-ns")?
                    .parse()
                    .map_err(|e| format!("--base-ns: {e}"))?;
            }
            "--horizon-ns" => {
                opts.horizon_ns = Some(
                    value(&mut args, "--horizon-ns")?
                        .parse()
                        .map_err(|e| format!("--horizon-ns: {e}"))?,
                );
            }
            "--servers" => {
                opts.servers = Some(
                    value(&mut args, "--servers")?
                        .parse()
                        .map_err(|e| format!("--servers: {e}"))?,
                );
            }
            "--transfer-ns" => {
                opts.transfer_ns = Some(
                    value(&mut args, "--transfer-ns")?
                        .parse()
                        .map_err(|e| format!("--transfer-ns: {e}"))?,
                );
            }
            "--stall-budget-ns" => {
                opts.stall_budget_ns = Some(
                    value(&mut args, "--stall-budget-ns")?
                        .parse()
                        .map_err(|e| format!("--stall-budget-ns: {e}"))?,
                );
            }
            "--grace-ns" => {
                opts.grace_ns = Some(
                    value(&mut args, "--grace-ns")?
                        .parse()
                        .map_err(|e| format!("--grace-ns: {e}"))?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path if opts.path.is_empty() => opts.path = path.to_string(),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    if opts.path.is_empty() {
        return Err("usage: check_trace <trace.json | trace.spans.jsonl> [options]".into());
    }
    Ok(opts)
}

fn check_spans(text: &str, opts: &Options) -> Result<(), String> {
    let mut cfg = CheckerConfig::default();
    if let Some(grace) = opts.grace_ns {
        cfg.open_at_end_grace = Nanos(grace);
    }
    cfg.migration_transfer = opts.transfer_ns.map(Nanos);
    cfg.stall_budget = opts.stall_budget_ns.map(Nanos);
    if let Some(plan_path) = &opts.plan {
        let plan_text = std::fs::read_to_string(plan_path)
            .map_err(|e| format!("cannot read {plan_path}: {e}"))?;
        let plan = FaultPlan::from_text(&plan_text)?;
        let servers = opts
            .servers
            .or_else(|| plan.max_server().map(|m| m as usize + 1))
            .unwrap_or(0);
        let horizon = opts.horizon_ns.map(Nanos).unwrap_or(Nanos::MAX);
        cfg.crash_windows = plan.crash_windows(servers, Nanos(opts.base_ns), horizon);
    }
    let report = check_jsonl(text, &cfg)?;
    for v in &report.violations {
        eprintln!("  {v}");
    }
    let kinds: Vec<String> = report
        .kind_counts
        .iter()
        .filter(|(_, c)| *c > 0)
        .map(|(n, c)| format!("{n}={c}"))
        .collect();
    println!(
        "{}: {} — {} events, {} lifecycles, {} terminals, {} in flight at end [{}]",
        opts.path,
        if report.is_clean() { "OK" } else { "INVALID" },
        report.events,
        report.lifecycles,
        report.terminals,
        report.in_flight_at_end,
        kinds.join(" ")
    );
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} invariant violations", report.violations.len()))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("check_trace: {err}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&opts.path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("check_trace: cannot read {}: {err}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    // Chrome exports are one JSON object; span dumps are JSONL records.
    if text.trim_start().starts_with('{') && !text.trim_start().starts_with("{\"req\"") {
        match validate_chrome_trace(&text) {
            Ok(stats) => {
                println!(
                    "{}: OK — {} events ({} spans, {} instants, {} counters) on {} tracks",
                    opts.path,
                    stats.total_events,
                    stats.complete_spans,
                    stats.instants,
                    stats.counters,
                    stats.tracks
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("check_trace: {}: INVALID — {err}", opts.path);
                ExitCode::FAILURE
            }
        }
    } else {
        match check_spans(&text, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("check_trace: {}: {err}", opts.path);
                ExitCode::FAILURE
            }
        }
    }
}
