//! Scenario fuzzer: random (workload × fault plan × controllers × thread
//! allocation) points through the full runtime and the trace lifecycle
//! checker, shrinking any failure to a minimal reproducer.
//!
//! Each seed is fully deterministic — the wall-clock budget only decides
//! *how many* seeds run, never what any seed does — so a failure report
//! is reproducible from its seed alone (see EXPERIMENTS.md).
//!
//! Environment:
//!   ACTOP_FUZZ_SECS    wall-clock budget in seconds (default 10)
//!   ACTOP_FUZZ_SEEDS   comma-separated seeds to run first (CI pins these);
//!                      the budget then continues from max(seeds)+1
//!   ACTOP_FUZZ_START   first sequential seed when no list is given
//!                      (default 1)
//!
//! Exits nonzero on the first failing scenario, after printing its shrunk
//! reproducer.

use std::process::ExitCode;
use std::time::Instant;

use actop_verify::fuzz_one;

/// Re-run budget for shrinking one failure.
const SHRINK_BUDGET: usize = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn pinned_seeds() -> Vec<u64> {
    std::env::var("ACTOP_FUZZ_SEEDS")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_default()
}

fn main() -> ExitCode {
    let budget_secs = env_u64("ACTOP_FUZZ_SECS", 10);
    let pinned = pinned_seeds();
    let next_seed = pinned
        .iter()
        .max()
        .map(|&m| m + 1)
        .unwrap_or_else(|| env_u64("ACTOP_FUZZ_START", 1));

    println!(
        "fuzz: budget {budget_secs}s, {} pinned seeds, then sequential from {next_seed}",
        pinned.len()
    );
    let start = Instant::now();
    let mut ran = 0usize;
    let pinned_count = pinned.len();
    let seeds = pinned.into_iter().chain(next_seed..);
    for seed in seeds {
        // Pinned seeds always run, even past the budget: CI pins exactly
        // the set it requires green. Past them, the budget decides — but
        // at least one scenario always runs.
        let within_budget = start.elapsed().as_secs() < budget_secs;
        if ran >= pinned_count.max(1) && !within_budget {
            break;
        }
        let (scenario, outcome) = fuzz_one(seed, SHRINK_BUDGET);
        ran += 1;
        if outcome.is_ok() {
            println!(
                "  seed {seed}: ok — {} events, {} lifecycles, {} completed, {} faults",
                outcome.report.events,
                outcome.report.lifecycles,
                outcome.summary.completed,
                scenario.plan.events.len()
            );
        } else {
            println!("  seed {seed}: FAILED — shrunk reproducer:");
            println!("{}", scenario.describe());
            for f in &outcome.failures {
                println!("    {f}");
            }
            println!(
                "reproduce: run_scenario on the scenario above, or fuzz_one({seed}, {SHRINK_BUDGET})"
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "fuzz: {ran} scenarios clean in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
