//! Streaming lifecycle-invariant checker over recorded trace events.
//!
//! The runtime's tracer records every observable step of a request's life
//! in simulation time; this module replays a recorded event stream (a live
//! `Tracer`'s spans or a re-imported `.spans.jsonl` file) and enforces the
//! invariants the runtime promises:
//!
//! * **Per-server monotone sim-time** — events are recorded in global
//!   event-loop order, so each server's stream is monotone in its record
//!   time (span end for queue/service spans, span *start* for network
//!   spans, which are recorded at send time with a known arrival).
//! * **Well-formed, well-nested spans** — `t_start ≤ t_end` everywhere;
//!   no activity for a request precedes its admission, and for requests
//!   that complete, none follows the completion.
//! * **Exactly one terminal per admitted lifecycle** — every `admit`
//!   reaches exactly one of done/timeout/shed before the request id is
//!   admitted again (ids are slab handles and recur); requests still in
//!   flight near the end of the trace are exempted by a grace window.
//! * **No work on a dead server** — queue-wait and service spans never
//!   overlap a crash window of the installed [`FaultPlan`] (crashes wipe
//!   queues and cancel in-progress work).
//! * **Migration transfer windows never overlap an endpoint crash** — a
//!   committed migration implies both endpoints were up for the whole
//!   transfer window (crashes abort in-flight migrations).
//! * **Migration stalls stay inside the scored amortization budget** —
//!   when the run's repartitioning policy priced moves (the cost-aware
//!   objective charges each move its measured stall and requires the
//!   gain to amortize it), no committed migration's span-measured stall
//!   may exceed the budget the scoring assumed. A longer stall means the
//!   move was committed on stale pricing.
//! * **Forward-hop bound** — a lifecycle accumulates at most
//!   [`MAX_FORWARD_HOPS`] re-routes (the runtime cuts forwarding loops).
//! * **Replica lifecycle discipline** — hot-actor replication keeps at
//!   most one activation per actor per server and exactly one primary:
//!   a split never lands a replica on the primary's server or a server
//!   already holding one; every split of a replicated actor names the
//!   same primary (the primary is pinned while replicas are live);
//!   replicated actors never migrate; drops only remove live replicas;
//!   and every replica-routed read falls inside a split → drop replica
//!   lifetime. Replica events from different servers interleave across
//!   shard-merged traces, so this family runs as a second, time-ordered
//!   pass.
//! * **Snapshot & stateful-recovery discipline** — per-actor state
//!   transitions are exactly `1..k` with no gap (lost write) or repeat
//!   (duplicated write), even across crashes and restores; a restore's
//!   version always equals the actor's last written version (the journal
//!   reproduces exactly the executed transitions) and names either the
//!   journal (round 0) or a round that committed; snapshot rounds never
//!   overlap, markers and captures land only inside their open round,
//!   each round captures an actor at most once, and complete/abort each
//!   close a round that actually began. Runs as a third time-ordered
//!   pass for the same shard-merge reason.
//!
//! The checker is a library first (tests call [`check_events`] on live
//! tracers) and a CLI second (the `check_trace` binary feeds it JSONL).

use std::collections::{HashMap, HashSet};
use std::fmt;

use actop_chaos::CrashWindows;
use actop_runtime::MAX_FORWARD_HOPS;
use actop_sim::Nanos;
use actop_trace::{parse_spans_jsonl, HopKind, SpanEvent, NO_SERVER};

/// Checker parameters. [`Default`] checks a fault-free, migration-instant
/// trace with the runtime's forward-hop cap and a 5 s in-flight grace.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Per-server down windows of the fault plan driven during the run
    /// (empty = fault-free).
    pub crash_windows: CrashWindows,
    /// The run's `RuntimeConfig::migration_transfer`, if set: a committed
    /// migration at `t` implies both endpoints were up over `(t-Δ, t)`.
    pub migration_transfer: Option<Nanos>,
    /// The scored amortization budget for one migration's stall, if the
    /// run's repartitioning policy priced its moves: the largest
    /// transfer-window stall a single committed move may impose. The
    /// cost-aware objective charges each move the measured per-move
    /// stall, so a run's budget is the transfer window it was scored
    /// under (plus whatever headroom the caller grants). A migration
    /// span's stall is its own width when the span carries a window,
    /// else [`CheckerConfig::migration_transfer`]. `None` disables the
    /// rule.
    pub stall_budget: Option<Nanos>,
    /// Maximum re-routes per lifecycle.
    pub max_forward_hops: u32,
    /// Lifecycles still open at end-of-trace are violations only when
    /// their admission is older than this, measured from the last record
    /// time in the trace. Runs stop at a horizon with requests genuinely
    /// in flight; anything older than the run's timeout must have
    /// produced a terminal. Set at least `2 × request_timeout`.
    pub open_at_end_grace: Nanos,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            crash_windows: CrashWindows::default(),
            migration_transfer: None,
            stall_budget: None,
            max_forward_hops: MAX_FORWARD_HOPS as u32,
            open_at_end_grace: Nanos::from_secs(5),
        }
    }
}

/// One invariant violation, pinned to the offending event.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the event in recording order (`usize::MAX` for
    /// end-of-trace findings).
    pub index: usize,
    /// The request (or actor, for migration rules) involved.
    pub request: u64,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.index == usize::MAX {
            write!(
                f,
                "[end-of-trace] {} req={}: {}",
                self.rule, self.request, self.detail
            )
        } else {
            write!(
                f,
                "[event {}] {} req={}: {}",
                self.index, self.rule, self.request, self.detail
            )
        }
    }
}

/// The checker's verdict over one event stream.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Events examined.
    pub events: usize,
    /// Request lifecycles opened by an admit.
    pub lifecycles: usize,
    /// Terminal events consumed (done / timeout / shed).
    pub terminals: usize,
    /// Lifecycles open at end-of-trace inside the grace window (benign
    /// in-flight residue).
    pub in_flight_at_end: usize,
    /// Events per [`HopKind`], in `HopKind::ALL` order.
    pub kind_counts: Vec<(&'static str, usize)>,
    /// All violations found, in stream order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count of a kind by its display name (0 for unknown names).
    pub fn kind_count(&self, name: &str) -> usize {
        self.kind_counts
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }
}

/// The record time of an event: the sim time the runtime emitted it.
/// Queue-wait and service spans are recorded at their end (starts are
/// backdated); network spans are recorded at send time with a known
/// arrival; instants have `t_start == t_end`.
fn record_time(ev: &SpanEvent) -> Nanos {
    match ev.kind {
        HopKind::Network => ev.t_start,
        _ => ev.t_end,
    }
}

/// True for kinds whose `request` field is a client-request id (as opposed
/// to lifecycle events, which carry actor or server ids there).
fn is_request_scoped(kind: HopKind) -> bool {
    !kind.is_lifecycle()
}

#[derive(Debug, Clone, Copy)]
struct Life {
    admitted_at: Nanos,
    admit_index: usize,
    forwards: u32,
    /// Latest activity end seen for this lifecycle.
    last_activity: Nanos,
}

/// Replays the replica lifecycle events in time order and enforces the
/// multi-activation discipline: one primary, one activation per server,
/// reads only inside live replica windows. A directory repair
/// ([`HopKind::DirRepair`]) closes the actor's replica window implicitly:
/// the repair drops the primary's entry and the replica set dies with it.
///
/// Shard-merged traces concatenate per-shard streams, so cross-server
/// replica events are not in stream order; this pass sorts by record
/// time, breaking ties so state-opening events (splits) apply before
/// reads and reads before state-closing events (drops).
fn check_replica_lifecycles(events: &[SpanEvent], violations: &mut Vec<Violation>) {
    fn phase(kind: HopKind) -> Option<u8> {
        match kind {
            HopKind::Split => Some(0),
            HopKind::ReplicaRead => Some(1),
            HopKind::ReplicaDrop => Some(2),
            HopKind::DirRepair => Some(2),
            HopKind::Migration => Some(3),
            _ => None,
        }
    }
    let mut ordered: Vec<(usize, u8)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, ev)| phase(ev.kind).map(|p| (i, p)))
        .collect();
    // Migrations without any split in the trace have nothing to violate.
    if !ordered.iter().any(|&(_, p)| p == 0) {
        return;
    }
    ordered.sort_by_key(|&(i, p)| (record_time(&events[i]), p, i));

    // actor -> (pinned primary, live replica servers).
    let mut live: HashMap<u64, (u32, Vec<u32>)> = HashMap::new();
    for (i, _) in ordered {
        let ev = &events[i];
        match ev.kind {
            HopKind::Split => {
                let actor = ev.request;
                let replica = ev.aux as u32;
                if replica == ev.server {
                    violations.push(Violation {
                        index: i,
                        request: actor,
                        rule: "replica-on-primary",
                        detail: format!(
                            "split placed a replica on the primary's server {}",
                            ev.server
                        ),
                    });
                    continue;
                }
                match live.get_mut(&actor) {
                    Some((primary, reps)) => {
                        if *primary != ev.server {
                            violations.push(Violation {
                                index: i,
                                request: actor,
                                rule: "split-primary-conflict",
                                detail: format!(
                                    "split names primary {} but replicas are live under primary {}",
                                    ev.server, primary
                                ),
                            });
                        } else if reps.contains(&replica) {
                            violations.push(Violation {
                                index: i,
                                request: actor,
                                rule: "replica-duplicate",
                                detail: format!("server {replica} already holds a live replica"),
                            });
                        } else {
                            reps.push(replica);
                        }
                    }
                    None => {
                        live.insert(actor, (ev.server, vec![replica]));
                    }
                }
            }
            HopKind::ReplicaDrop => {
                let actor = ev.request;
                let replica = ev.aux as u32;
                let emptied = match live.get_mut(&actor) {
                    Some((_, reps)) if reps.contains(&replica) => {
                        reps.retain(|&r| r != replica);
                        reps.is_empty()
                    }
                    _ => {
                        violations.push(Violation {
                            index: i,
                            request: actor,
                            rule: "drop-without-replica",
                            detail: format!("no live replica on server {replica}"),
                        });
                        false
                    }
                };
                if emptied {
                    // The actor is unsplit again: it may migrate and later
                    // re-split under a new primary.
                    live.remove(&actor);
                }
            }
            HopKind::DirRepair => {
                // A directory repair drops the primary's entry, and the
                // replica set — read-only clones of the lost state — dies
                // with it. The repair event itself closes the replica
                // window; the actor may later re-split under a new
                // primary.
                live.remove(&ev.request);
            }
            HopKind::ReplicaRead => {
                let actor = ev.aux;
                let hosted = live
                    .get(&actor)
                    .is_some_and(|(_, reps)| reps.contains(&ev.server));
                if !hosted {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "replica-read-outside-window",
                        detail: format!(
                            "read of actor {actor} at server {} with no live replica there",
                            ev.server
                        ),
                    });
                }
            }
            HopKind::Migration => {
                if let Some((_, reps)) = live.get(&ev.request) {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "migration-of-replicated",
                        detail: format!(
                            "actor migrated with {} live replica(s); the primary is pinned \
                             while replicas are live",
                            reps.len()
                        ),
                    });
                }
            }
            _ => unreachable!("phase() only admits replica lifecycle kinds"),
        }
    }
}

/// Replays the snapshot lifecycle events in time order and enforces the
/// stateful-recovery discipline: contiguous per-actor transitions,
/// restores that reproduce exactly the executed writes from committed
/// rounds only, and well-formed non-overlapping snapshot rounds.
///
/// Like the replica pass, this sorts by record time (shard-merged traces
/// interleave streams), breaking ties causally: a round begins before its
/// markers, a touch restores before it captures before it writes, and a
/// round's sweep captures apply before its commit.
fn check_snapshot_lifecycles(events: &[SpanEvent], violations: &mut Vec<Violation>) {
    fn phase(kind: HopKind) -> Option<u8> {
        match kind {
            HopKind::SnapBegin => Some(0),
            HopKind::SnapMarker => Some(1),
            HopKind::Restore => Some(2),
            HopKind::SnapCapture => Some(3),
            HopKind::StateWrite => Some(4),
            HopKind::SnapComplete => Some(5),
            HopKind::SnapAbort => Some(6),
            _ => None,
        }
    }
    let mut ordered: Vec<(usize, u8)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, ev)| phase(ev.kind).map(|p| (i, p)))
        .collect();
    if ordered.is_empty() {
        return;
    }
    ordered.sort_by_key(|&(i, p)| (record_time(&events[i]), p, i));

    // Capture and restore events pack `(round << 40) | version` in aux.
    const VERSION_MASK: u64 = (1 << 40) - 1;
    let mut open: Option<u64> = None;
    let mut completed: HashSet<u64> = HashSet::new();
    // (round, actor) pairs captured — first-wins, never twice.
    let mut captured: HashSet<(u64, u64)> = HashSet::new();
    // actor -> last written transition counter.
    let mut writes: HashMap<u64, u64> = HashMap::new();
    for (i, _) in ordered {
        let ev = &events[i];
        match ev.kind {
            HopKind::SnapBegin => {
                if let Some(other) = open {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-overlapping-rounds",
                        detail: format!("round began while round {other} is still open"),
                    });
                }
                open = Some(ev.request);
            }
            HopKind::SnapMarker => {
                if open != Some(ev.request) {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-marker-outside-round",
                        detail: format!(
                            "server {} marked for round {} which is not open",
                            ev.server, ev.request
                        ),
                    });
                }
            }
            HopKind::SnapCapture => {
                let (round, version) = (ev.aux >> 40, ev.aux & VERSION_MASK);
                if open != Some(round) {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-capture-outside-round",
                        detail: format!("capture names round {round} which is not open"),
                    });
                } else if !captured.insert((round, ev.request)) {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-duplicate-capture",
                        detail: format!("round {round} already captured this actor"),
                    });
                }
                let current = writes.get(&ev.request).copied().unwrap_or(0);
                if version != current {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-capture-version-mismatch",
                        detail: format!(
                            "captured version {version} but the actor's last write is {current}"
                        ),
                    });
                }
            }
            HopKind::StateWrite => {
                let prev = writes.get(&ev.request).copied().unwrap_or(0);
                if ev.aux <= prev {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "state-transition-duplicate",
                        detail: format!("write produced version {} after {prev}", ev.aux),
                    });
                } else if ev.aux != prev + 1 {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "state-transition-gap",
                        detail: format!(
                            "write jumped to version {} from {prev}: transitions lost",
                            ev.aux
                        ),
                    });
                }
                writes.insert(ev.request, ev.aux);
            }
            HopKind::SnapComplete => {
                if open == Some(ev.request) {
                    open = None;
                    completed.insert(ev.request);
                } else {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-complete-without-begin",
                        detail: "commit of a round that is not open".into(),
                    });
                }
            }
            HopKind::SnapAbort => {
                if open == Some(ev.request) {
                    open = None;
                } else {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-abort-without-begin",
                        detail: "abort of a round that is not open".into(),
                    });
                }
            }
            HopKind::Restore => {
                let (round, version) = (ev.aux >> 40, ev.aux & VERSION_MASK);
                // Round 0 is the journal-only restore source (no complete
                // round yet); any other round must have committed.
                if round != 0 && !completed.contains(&round) {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-restore-from-incomplete",
                        detail: format!("restore sourced round {round} which never committed"),
                    });
                }
                let current = writes.get(&ev.request).copied().unwrap_or(0);
                if version != current {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "snap-restore-version-mismatch",
                        detail: format!(
                            "restored version {version} but the actor's last write is {current}: \
                             transitions {}",
                            if version < current {
                                "lost"
                            } else {
                                "duplicated"
                            }
                        ),
                    });
                }
            }
            _ => unreachable!("phase() only admits snapshot lifecycle kinds"),
        }
    }
}

/// Checks an event stream (a `Tracer`'s spans or re-parsed JSONL, in
/// recording order) against every lifecycle invariant.
pub fn check_events(events: &[SpanEvent], cfg: &CheckerConfig) -> CheckReport {
    let mut violations: Vec<Violation> = Vec::new();
    let mut kind_counts: Vec<(&'static str, usize)> =
        HopKind::ALL.iter().map(|k| (k.name(), 0)).collect();
    let mut last_record: HashMap<u32, Nanos> = HashMap::new();
    let mut open: HashMap<u64, Life> = HashMap::new();
    // Requests that have completed at least one full lifecycle, with the
    // kind of their latest terminal (ids recur; a re-admit resets this).
    let mut terminated: HashMap<u64, HopKind> = HashMap::new();
    let mut lifecycles = 0usize;
    let mut terminals = 0usize;
    let mut trace_end = Nanos::ZERO;

    for (i, ev) in events.iter().enumerate() {
        kind_counts[ev.kind as usize].1 += 1;
        let rt = record_time(ev);
        trace_end = trace_end.max(rt);

        // Well-formed interval.
        if ev.t_start > ev.t_end {
            violations.push(Violation {
                index: i,
                request: ev.request,
                rule: "inverted-span",
                detail: format!(
                    "{} t_start {} > t_end {}",
                    ev.kind.name(),
                    ev.t_start.as_nanos(),
                    ev.t_end.as_nanos()
                ),
            });
        }

        // Per-server monotone record time.
        let slot = last_record.entry(ev.server).or_insert(Nanos::ZERO);
        if rt < *slot {
            violations.push(Violation {
                index: i,
                request: ev.request,
                rule: "time-regression",
                detail: format!(
                    "server {} record time {} after {}",
                    ev.server,
                    rt.as_nanos(),
                    slot.as_nanos()
                ),
            });
        } else {
            *slot = rt;
        }

        // No queued or in-service work on a dead server.
        if matches!(ev.kind, HopKind::QueueWait | HopKind::Service)
            && cfg.crash_windows.overlaps(ev.server, ev.t_start, ev.t_end)
        {
            violations.push(Violation {
                index: i,
                request: ev.request,
                rule: "service-during-crash",
                detail: format!(
                    "{} [{}, {}] overlaps a crash window of server {}",
                    ev.kind.name(),
                    ev.t_start.as_nanos(),
                    ev.t_end.as_nanos(),
                    ev.server
                ),
            });
        }

        // Migration commits imply both endpoints lived through the
        // transfer window.
        if ev.kind == HopKind::Migration {
            if let Some(budget) = cfg.stall_budget {
                // The span-measured stall: the span's own width when the
                // recorder gave the commit a window, else the run's
                // configured transfer window (the runtime records
                // commits as instants and keeps the window as run
                // metadata).
                let stall = if ev.t_end > ev.t_start {
                    ev.t_end.saturating_sub(ev.t_start)
                } else {
                    cfg.migration_transfer.unwrap_or(Nanos::ZERO)
                };
                if stall > budget {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "migration-stall-over-budget",
                        detail: format!(
                            "stall {} ns exceeds the scored amortization budget of {} ns",
                            stall.as_nanos(),
                            budget.as_nanos()
                        ),
                    });
                }
            }
            let from = ev
                .t_start
                .saturating_sub(cfg.migration_transfer.unwrap_or(Nanos::ZERO));
            for endpoint in [ev.server, ev.aux as u32] {
                if cfg.crash_windows.overlaps(endpoint, from, ev.t_end)
                    || cfg.crash_windows.is_down(endpoint, ev.t_end)
                {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "migration-over-crash",
                        detail: format!(
                            "transfer window [{}, {}] overlaps a crash of server {endpoint}",
                            from.as_nanos(),
                            ev.t_end.as_nanos()
                        ),
                    });
                }
            }
        }

        if !is_request_scoped(ev.kind) {
            continue;
        }

        match ev.kind {
            HopKind::GatewayAdmit => {
                if let Some(life) = open.get(&ev.request) {
                    violations.push(Violation {
                        index: i,
                        request: ev.request,
                        rule: "readmit-without-terminal",
                        detail: format!(
                            "already admitted at event {} ({}) with no terminal since",
                            life.admit_index,
                            life.admitted_at.as_nanos()
                        ),
                    });
                }
                terminated.remove(&ev.request);
                open.insert(
                    ev.request,
                    Life {
                        admitted_at: ev.t_start,
                        admit_index: i,
                        forwards: 0,
                        last_activity: ev.t_end,
                    },
                );
                lifecycles += 1;
            }
            HopKind::ClientDone | HopKind::Timeout | HopKind::Shed => {
                match open.remove(&ev.request) {
                    Some(life) => {
                        terminals += 1;
                        if ev.kind == HopKind::ClientDone && life.last_activity > ev.t_end {
                            violations.push(Violation {
                                index: i,
                                request: ev.request,
                                rule: "activity-after-done",
                                detail: format!(
                                    "span activity at {} exceeds completion at {}",
                                    life.last_activity.as_nanos(),
                                    ev.t_end.as_nanos()
                                ),
                            });
                        }
                        terminated.insert(ev.request, ev.kind);
                    }
                    None => {
                        // The total-cluster-loss path sheds at admission
                        // without recording an admit: a standalone shed at
                        // the client sentinel is one whole lifecycle.
                        if ev.kind == HopKind::Shed && ev.server == NO_SERVER {
                            lifecycles += 1;
                            terminals += 1;
                            terminated.insert(ev.request, ev.kind);
                        } else {
                            violations.push(Violation {
                                index: i,
                                request: ev.request,
                                rule: "terminal-without-admit",
                                detail: format!("{} with no open lifecycle", ev.kind.name()),
                            });
                        }
                    }
                }
            }
            _ => {
                // Non-terminal request activity.
                match open.get_mut(&ev.request) {
                    Some(life) => {
                        if ev.t_start < life.admitted_at {
                            violations.push(Violation {
                                index: i,
                                request: ev.request,
                                rule: "activity-before-admit",
                                detail: format!(
                                    "{} starts at {} before admission at {}",
                                    ev.kind.name(),
                                    ev.t_start.as_nanos(),
                                    life.admitted_at.as_nanos()
                                ),
                            });
                        }
                        life.last_activity = life.last_activity.max(ev.t_end);
                        if ev.kind == HopKind::Forward {
                            life.forwards += 1;
                            if life.forwards > cfg.max_forward_hops {
                                violations.push(Violation {
                                    index: i,
                                    request: ev.request,
                                    rule: "forward-hop-cap",
                                    detail: format!(
                                        "{} forwards exceed the cap of {}",
                                        life.forwards, cfg.max_forward_hops
                                    ),
                                });
                            }
                        }
                    }
                    None => match terminated.get(&ev.request) {
                        // After a timeout the abandoned request's messages
                        // are still in flight; their spans, losses,
                        // retries, and stale responses are legal.
                        Some(HopKind::Timeout) => {}
                        Some(term) => violations.push(Violation {
                            index: i,
                            request: ev.request,
                            rule: "activity-after-terminal",
                            detail: format!(
                                "{} after lifecycle ended with {}",
                                ev.kind.name(),
                                term.name()
                            ),
                        }),
                        None => violations.push(Violation {
                            index: i,
                            request: ev.request,
                            rule: "orphan-activity",
                            detail: format!("{} for a never-admitted request", ev.kind.name()),
                        }),
                    },
                }
            }
        }
    }

    check_replica_lifecycles(events, &mut violations);
    check_snapshot_lifecycles(events, &mut violations);
    // The replica and snapshot passes append out of stream order; restore
    // index order (stable, so same-event findings keep their emission
    // order).
    violations.sort_by_key(|v| v.index);

    // End of trace: open lifecycles are fine only inside the grace window
    // (genuinely in flight at the horizon).
    let mut in_flight_at_end = 0usize;
    let cutoff = trace_end.saturating_sub(cfg.open_at_end_grace);
    let mut stuck: Vec<(&u64, &Life)> = open
        .iter()
        .filter(|(_, life)| life.admitted_at < cutoff)
        .collect();
    stuck.sort_by_key(|(_, life)| life.admit_index);
    for (&request, life) in &stuck {
        violations.push(Violation {
            index: usize::MAX,
            request,
            rule: "missing-terminal",
            detail: format!(
                "admitted at event {} ({}) but no done/timeout/shed by trace end ({})",
                life.admit_index,
                life.admitted_at.as_nanos(),
                trace_end.as_nanos()
            ),
        });
    }
    in_flight_at_end += open.len() - stuck.len();

    CheckReport {
        events: events.len(),
        lifecycles,
        terminals,
        in_flight_at_end,
        kind_counts,
        violations,
    }
}

/// Parses a `.spans.jsonl` document and checks it. Errors are malformed
/// input (not invariant violations — those are in the report).
pub fn check_jsonl(text: &str, cfg: &CheckerConfig) -> Result<CheckReport, String> {
    Ok(check_events(&parse_spans_jsonl(text)?, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    fn admit(req: u64, server: u32, at: Nanos) -> SpanEvent {
        SpanEvent::instant(req, HopKind::GatewayAdmit, server, 0, at)
    }

    fn done(req: u64, at: Nanos) -> SpanEvent {
        SpanEvent::instant(req, HopKind::ClientDone, NO_SERVER, 0, at)
    }

    fn service(req: u64, server: u32, t0: Nanos, t1: Nanos) -> SpanEvent {
        SpanEvent {
            request: req,
            kind: HopKind::Service,
            server,
            stage: 1,
            aux: 0,
            t_start: t0,
            t_end: t1,
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let events = vec![
            admit(1, 0, us(10)),
            service(1, 0, us(12), us(40)),
            done(1, us(50)),
            admit(1, 0, us(60)), // Slab id reuse after the terminal: legal.
            service(1, 0, us(61), us(80)),
            done(1, us(90)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.lifecycles, 2);
        assert_eq!(report.terminals, 2);
        assert_eq!(report.kind_count("service"), 2);
    }

    #[test]
    fn missing_terminal_is_flagged_outside_grace() {
        let cfg = CheckerConfig {
            open_at_end_grace: us(100),
            ..CheckerConfig::default()
        };
        let events = vec![
            admit(1, 0, us(10)), // Stuck: trace runs another 500 us.
            admit(2, 0, us(550)),
            service(2, 0, us(551), us(600)), // Request 2 is in-flight residue.
        ];
        let report = check_events(&events, &cfg);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "missing-terminal");
        assert_eq!(report.violations[0].request, 1);
        assert_eq!(report.in_flight_at_end, 1);
    }

    #[test]
    fn readmit_without_terminal_is_flagged() {
        let events = vec![admit(1, 0, us(10)), admit(1, 0, us(20)), done(1, us(30))];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "readmit-without-terminal");
    }

    #[test]
    fn terminal_without_admit_and_standalone_shed() {
        let events = vec![
            done(7, us(10)),
            SpanEvent::instant(9, HopKind::Shed, NO_SERVER, 0, us(20)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "terminal-without-admit");
        assert_eq!(report.lifecycles, 1, "the no-live-server shed counts");
        assert_eq!(report.terminals, 1);
    }

    #[test]
    fn time_regression_per_server_is_flagged() {
        let events = vec![
            admit(1, 0, us(50)),
            admit(2, 1, us(20)), // Different server: fine.
            admit(3, 0, us(30)), // Server 0 went backwards.
            done(1, us(60)),
            done(2, us(61)),
            done(3, us(62)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "time-regression");
        assert_eq!(report.violations[0].request, 3);
    }

    #[test]
    fn network_spans_use_send_time_for_monotonicity() {
        // A network span is recorded at send time with a future arrival;
        // a later event with an earlier *end* is still in order.
        let events = vec![
            admit(1, 0, us(10)),
            SpanEvent {
                request: 1,
                kind: HopKind::Network,
                server: 0,
                stage: actop_trace::NO_STAGE,
                aux: 1,
                t_start: us(20),
                t_end: us(500), // Arrival far in the future.
            },
            service(1, 0, us(21), us(30)), // Recorded at 30 < 500: legal.
            done(1, us(501)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn service_during_crash_window_is_flagged() {
        let mut plan = actop_chaos::FaultPlan::new("t");
        plan.push(us(100), actop_chaos::Fault::Crash { server: 0 });
        plan.push(us(200), actop_chaos::Fault::Recover { server: 0 });
        let cfg = CheckerConfig {
            crash_windows: plan.crash_windows(2, Nanos::ZERO, us(1_000)),
            ..CheckerConfig::default()
        };
        let events = vec![
            admit(1, 1, us(10)),
            service(1, 0, us(120), us(150)), // Inside server 0's crash.
            service(1, 1, us(120), us(150)), // Server 1 is alive: fine.
            done(1, us(160)),
        ];
        let report = check_events(&events, &cfg);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "service-during-crash");
    }

    #[test]
    fn migration_over_crash_is_flagged() {
        let mut plan = actop_chaos::FaultPlan::new("t");
        plan.push(us(100), actop_chaos::Fault::Crash { server: 2 });
        plan.push(us(140), actop_chaos::Fault::Recover { server: 2 });
        let cfg = CheckerConfig {
            crash_windows: plan.crash_windows(3, Nanos::ZERO, us(1_000)),
            migration_transfer: Some(us(50)),
            ..CheckerConfig::default()
        };
        // Commit at 160: transfer window (110, 160) overlaps the crash.
        let bad = SpanEvent::instant(77, HopKind::Migration, 1, 2, us(160));
        let report = check_events(&[bad], &cfg);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "migration-over-crash");
        // Commit at 250: window (200, 250) clears the healed crash.
        let good = SpanEvent::instant(77, HopKind::Migration, 1, 2, us(250));
        assert!(check_events(&[good], &cfg).is_clean());
    }

    #[test]
    fn migration_stall_over_budget_is_flagged() {
        let cfg = CheckerConfig {
            migration_transfer: Some(us(50)),
            stall_budget: Some(us(80)),
            ..CheckerConfig::default()
        };
        // Instant commit: the stall is the configured window (50 us),
        // inside the 80 us budget.
        let instant = SpanEvent::instant(9, HopKind::Migration, 1, 2, us(200));
        assert!(check_events(&[instant], &cfg).is_clean());
        // A windowed commit span measures its own stall: 120 us > 80 us.
        let windowed = SpanEvent {
            request: 9,
            kind: HopKind::Migration,
            server: 1,
            stage: 0,
            aux: 2,
            t_start: us(200),
            t_end: us(320),
        };
        let report = check_events(&[windowed], &cfg);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "migration-stall-over-budget");
        assert_eq!(report.violations[0].request, 9);
        // An instant commit under a window wider than the budget is the
        // same overrun, witnessed through the run metadata.
        let tight = CheckerConfig {
            migration_transfer: Some(us(100)),
            stall_budget: Some(us(80)),
            ..CheckerConfig::default()
        };
        let report = check_events(&[instant], &tight);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "migration-stall-over-budget");
        // No budget, no rule: the windowed span is clean again.
        let off = CheckerConfig {
            migration_transfer: Some(us(50)),
            ..CheckerConfig::default()
        };
        assert!(check_events(&[windowed], &off).is_clean());
    }

    #[test]
    fn forward_hop_cap_is_enforced() {
        let mut events = vec![admit(1, 0, us(10))];
        for i in 0..40 {
            events.push(SpanEvent::instant(
                1,
                HopKind::Forward,
                (i % 3) as u32,
                0,
                us(11 + i),
            ));
        }
        events.push(done(1, us(100)));
        let report = check_events(&events, &CheckerConfig::default());
        let caps: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == "forward-hop-cap")
            .collect();
        assert_eq!(caps.len(), 40 - MAX_FORWARD_HOPS as usize);
    }

    #[test]
    fn post_timeout_activity_is_legal_but_post_done_is_not() {
        let events = vec![
            admit(1, 0, us(10)),
            SpanEvent::instant(1, HopKind::Timeout, 0, 0, us(100)),
            service(1, 0, us(120), us(150)), // Abandoned work completes.
            SpanEvent::instant(1, HopKind::StaleResponse, 0, 0, us(160)),
            admit(2, 0, us(200)),
            done(2, us(220)),
            service(2, 0, us(230), us(240)), // After done: must not happen.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "activity-after-terminal");
        assert_eq!(report.violations[0].request, 2);
    }

    #[test]
    fn inverted_span_and_orphan_are_flagged() {
        let events = vec![
            SpanEvent {
                request: 5,
                kind: HopKind::Service,
                server: 0,
                stage: 0,
                aux: 0,
                t_start: us(50),
                t_end: us(40),
            },
            SpanEvent::instant(6, HopKind::Retry, 1, 1, us(60)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"inverted-span"));
        assert!(rules.contains(&"orphan-activity"));
    }

    #[test]
    fn lifecycle_events_are_not_request_scoped() {
        // Suspect/unsuspect carry a *server* id in the request field and
        // must not trip the orphan rule.
        let events = vec![
            SpanEvent::instant(3, HopKind::Suspect, 0, 0, us(10)),
            SpanEvent::instant(3, HopKind::Unsuspect, 0, 0, us(20)),
            SpanEvent::instant(0, HopKind::ServerFail, 2, 0, us(30)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    fn split(actor: u64, primary: u32, replica: u32, at: Nanos) -> SpanEvent {
        SpanEvent::instant(actor, HopKind::Split, primary, u64::from(replica), at)
    }

    fn drop_rep(actor: u64, primary: u32, replica: u32, at: Nanos) -> SpanEvent {
        SpanEvent::instant(actor, HopKind::ReplicaDrop, primary, u64::from(replica), at)
    }

    fn replica_read(req: u64, actor: u64, server: u32, at: Nanos) -> SpanEvent {
        SpanEvent::instant(req, HopKind::ReplicaRead, server, actor, at)
    }

    #[test]
    fn replica_lifetime_with_reads_inside_is_clean() {
        let events = vec![
            admit(1, 0, us(10)),
            split(42, 0, 2, us(20)),
            replica_read(1, 42, 2, us(30)),
            done(1, us(40)),
            drop_rep(42, 0, 2, us(50)),
            // Unsplit again: the actor may migrate and re-split elsewhere.
            SpanEvent::instant(42, HopKind::Migration, 0, 3, us(60)),
            split(42, 3, 1, us(70)),
            drop_rep(42, 3, 1, us(80)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn replica_read_outside_window_is_flagged() {
        let events = vec![
            admit(1, 0, us(10)),
            split(42, 0, 2, us(20)),
            drop_rep(42, 0, 2, us(30)),
            replica_read(1, 42, 2, us(40)), // After the drop: stale routing.
            done(1, us(50)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "replica-read-outside-window");
        assert_eq!(report.violations[0].request, 1);
    }

    #[test]
    fn replica_pass_orders_by_time_not_stream_position() {
        // A shard-merged trace concatenates per-shard streams: the read
        // (shard B) can precede the split (shard A) in stream order while
        // following it in sim time. The checker must accept this...
        let events = vec![
            admit(1, 2, us(5)),
            replica_read(1, 42, 2, us(30)),
            done(1, us(40)),
            split(42, 0, 2, us(20)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        // ...and still flag a read whose sim time precedes every split.
        let events = vec![
            admit(1, 2, us(5)),
            replica_read(1, 42, 2, us(10)),
            done(1, us(40)),
            split(42, 0, 2, us(20)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "replica-read-outside-window");
    }

    #[test]
    fn double_activation_splits_are_flagged() {
        let events = vec![
            split(42, 0, 0, us(10)), // Replica on the primary's own server.
            split(42, 0, 2, us(20)),
            split(42, 0, 2, us(30)), // Same server again: duplicate.
            split(42, 1, 3, us(40)), // Different primary while replicated.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec![
                "replica-on-primary",
                "replica-duplicate",
                "split-primary-conflict"
            ]
        );
    }

    #[test]
    fn dir_repair_closes_the_replica_window() {
        // Crash-era lazy knowledge: the primary's entry is repaired away
        // (replicas die with it, no explicit drops), then the actor
        // re-splits under a new primary. Clean — but a read against the
        // dead window is still flagged.
        let events = vec![
            split(42, 0, 2, us(10)),
            // `request` the actor, `server` the observer, `aux` the host.
            SpanEvent::instant(42, HopKind::DirRepair, 3, 0, us(20)),
            split(42, 1, 3, us(30)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);

        let events = vec![
            split(42, 0, 2, us(10)),
            admit(7, 2, us(15)),
            SpanEvent::instant(42, HopKind::DirRepair, 3, 0, us(20)),
            replica_read(7, 42, 2, us(30)),
            done(7, us(40)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "replica-read-outside-window");
    }

    #[test]
    fn drop_without_replica_is_flagged() {
        let events = vec![
            split(42, 0, 2, us(10)),
            drop_rep(42, 0, 3, us(20)), // Server 3 never held a replica.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "drop-without-replica");
    }

    #[test]
    fn migration_of_replicated_actor_is_flagged() {
        let events = vec![
            split(42, 0, 2, us(10)),
            SpanEvent::instant(42, HopKind::Migration, 0, 3, us(20)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "migration-of-replicated");
        // With no splits anywhere, migrations pay no replica bookkeeping.
        let lone = [SpanEvent::instant(42, HopKind::Migration, 0, 3, us(20))];
        assert!(check_events(&lone, &CheckerConfig::default()).is_clean());
    }

    fn snap_round(id: u64, kind: HopKind, server: u32, aux: u64, at: Nanos) -> SpanEvent {
        SpanEvent::instant(id, kind, server, aux, at)
    }

    fn write(actor: u64, server: u32, version: u64, at: Nanos) -> SpanEvent {
        SpanEvent::instant(actor, HopKind::StateWrite, server, version, at)
    }

    fn capture(actor: u64, server: u32, round: u64, version: u64, at: Nanos) -> SpanEvent {
        SpanEvent::instant(
            actor,
            HopKind::SnapCapture,
            server,
            (round << 40) | version,
            at,
        )
    }

    fn restore(actor: u64, server: u32, round: u64, version: u64, at: Nanos) -> SpanEvent {
        SpanEvent::instant(actor, HopKind::Restore, server, (round << 40) | version, at)
    }

    #[test]
    fn snapshot_lifecycle_with_crash_recovery_is_clean() {
        let events = vec![
            write(7, 1, 1, us(5)),
            snap_round(1, HopKind::SnapBegin, 0, 0, us(10)),
            snap_round(1, HopKind::SnapMarker, 0, 0, us(10)),
            snap_round(1, HopKind::SnapMarker, 1, 0, us(12)),
            // Lazy capture at the pre-write version, then the write.
            capture(7, 1, 1, 1, us(15)),
            write(7, 1, 2, us(15)),
            snap_round(1, HopKind::SnapComplete, 0, 1, us(20)),
            // Crash wipes the cell; restore reproduces the last write
            // from the committed round, then writing resumes.
            restore(7, 2, 1, 2, us(40)),
            write(7, 2, 3, us(40)),
            // A later journal-only restore (round 0) is always legal.
            restore(7, 0, 0, 3, us(60)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn lost_and_duplicated_transitions_are_flagged() {
        let events = vec![
            write(7, 1, 1, us(5)),
            write(7, 1, 1, us(10)), // Same version again: duplicated.
            write(7, 1, 3, us(20)), // Skipped 2: lost.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec!["state-transition-duplicate", "state-transition-gap"]
        );
    }

    #[test]
    fn restore_version_mismatch_is_flagged() {
        let events = vec![
            write(7, 1, 1, us(5)),
            write(7, 1, 2, us(10)),
            restore(7, 2, 0, 1, us(40)), // Served version 1, lost write 2.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "snap-restore-version-mismatch");
    }

    #[test]
    fn restore_only_from_complete_rounds() {
        let events = vec![
            write(7, 1, 1, us(5)),
            snap_round(1, HopKind::SnapBegin, 0, 0, us(10)),
            capture(7, 1, 1, 1, us(12)),
            snap_round(1, HopKind::SnapAbort, 1, 0, us(15)),
            restore(7, 2, 1, 1, us(40)), // Round 1 aborted: bad source.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "snap-restore-from-incomplete");
    }

    #[test]
    fn round_shape_violations_are_flagged() {
        let events = vec![
            snap_round(1, HopKind::SnapBegin, 0, 0, us(10)),
            snap_round(2, HopKind::SnapBegin, 0, 0, us(20)), // 1 still open.
            snap_round(9, HopKind::SnapMarker, 1, 0, us(21)), // Not open.
            write(7, 1, 1, us(22)),
            capture(7, 1, 2, 1, us(25)),
            capture(7, 1, 2, 1, us(26)), // Captured twice in round 2.
            snap_round(2, HopKind::SnapComplete, 0, 1, us(30)),
            snap_round(2, HopKind::SnapAbort, 0, 0, us(31)), // Closed already.
        ];
        let report = check_events(&events, &CheckerConfig::default());
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec![
                "snap-overlapping-rounds",
                "snap-marker-outside-round",
                "snap-duplicate-capture",
                "snap-abort-without-begin"
            ]
        );
    }

    #[test]
    fn snapshot_pass_orders_by_time_not_stream_position() {
        // Shard-merged: the store shard's round events and another
        // shard's writes interleave out of stream order (each server's
        // own stream stays monotone).
        let events = vec![
            capture(7, 1, 1, 1, us(15)),
            write(7, 1, 2, us(15)),
            write(7, 2, 1, us(5)),
            snap_round(1, HopKind::SnapBegin, 0, 0, us(10)),
            snap_round(1, HopKind::SnapComplete, 0, 1, us(20)),
        ];
        let report = check_events(&events, &CheckerConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn jsonl_entry_point_matches_events() {
        let events = [admit(1, 0, us(10)), done(1, us(50))];
        let jsonl: String = events
            .iter()
            .map(|e| {
                format!(
                    "{{\"req\":{},\"kind\":\"{}\",\"server\":{},\"stage\":{},\"aux\":{},\"t0_ns\":{},\"t1_ns\":{}}}\n",
                    e.request,
                    e.kind.name(),
                    e.server,
                    e.stage,
                    e.aux,
                    e.t_start.as_nanos(),
                    e.t_end.as_nanos()
                )
            })
            .collect();
        let report = check_jsonl(&jsonl, &CheckerConfig::default()).expect("parses");
        assert!(report.is_clean());
        assert_eq!(report.events, 2);
        assert!(check_jsonl("junk", &CheckerConfig::default()).is_err());
    }
}
