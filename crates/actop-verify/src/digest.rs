//! Order-insensitive trace digests and server relabeling.
//!
//! A [`TraceDigest`] condenses an event stream into counts that are stable
//! across refactors of recording *order* but sensitive to what actually
//! happened: total events, the per-kind histogram, and the distinct server
//! and request populations. The golden-trace test pins one digest; the
//! relabeling metamorphic law uses digests to state "permuting server ids
//! permutes per-server counts but preserves every aggregate".

use std::collections::BTreeMap;
use std::fmt;

use actop_trace::{HopKind, SpanEvent, NO_SERVER};

/// Aggregate fingerprint of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDigest {
    /// Total events.
    pub events: usize,
    /// Events per kind, `HopKind::ALL` order, zero entries included.
    pub kind_counts: Vec<(&'static str, usize)>,
    /// Events per server id ([`NO_SERVER`] included when present).
    pub server_counts: BTreeMap<u32, usize>,
    /// Distinct request-field values (request ids for request-scoped
    /// kinds, actor/server ids for lifecycle kinds — still a stable
    /// population count for a deterministic run).
    pub distinct_requests: usize,
}

impl TraceDigest {
    /// Computes the digest of an event stream.
    pub fn of(events: &[SpanEvent]) -> Self {
        let mut kind_counts: Vec<(&'static str, usize)> =
            HopKind::ALL.iter().map(|k| (k.name(), 0)).collect();
        let mut server_counts = BTreeMap::new();
        let mut requests = std::collections::HashSet::new();
        for ev in events {
            kind_counts[ev.kind as usize].1 += 1;
            *server_counts.entry(ev.server).or_insert(0) += 1;
            requests.insert(ev.request);
        }
        TraceDigest {
            events: events.len(),
            kind_counts,
            server_counts,
            distinct_requests: requests.len(),
        }
    }

    /// Count for one kind by display name (0 for unknown names).
    pub fn kind(&self, name: &str) -> usize {
        self.kind_counts
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// The server-id-insensitive part of the digest: totals, kind
    /// histogram, distinct populations, and the *multiset* of per-server
    /// counts. Two traces that differ only by a server relabeling compare
    /// equal under this view.
    pub fn unlabeled(&self) -> (usize, Vec<(&'static str, usize)>, Vec<usize>, usize) {
        let mut per_server: Vec<usize> = self.server_counts.values().copied().collect();
        per_server.sort_unstable();
        (
            self.events,
            self.kind_counts.clone(),
            per_server,
            self.distinct_requests,
        )
    }
}

impl fmt::Display for TraceDigest {
    /// Stable single-line form, suitable for pinning in a golden test.
    /// Zero-count kinds are omitted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} servers={} requests={}",
            self.events,
            self.server_counts.len(),
            self.distinct_requests
        )?;
        for (name, count) in &self.kind_counts {
            if *count > 0 {
                write!(f, " {name}={count}")?;
            }
        }
        Ok(())
    }
}

/// Explains the first way two digests differ (`None` when equal).
///
/// Differential determinism tests — the same run repeated at different
/// shard counts or thread counts must fingerprint identically — use this
/// to turn a blunt two-struct `assert_eq!` dump into the one component
/// that diverged.
pub fn diff_digests(a: &TraceDigest, b: &TraceDigest) -> Option<String> {
    if a.events != b.events {
        return Some(format!("total events: {} vs {}", a.events, b.events));
    }
    for ((name, ca), (_, cb)) in a.kind_counts.iter().zip(&b.kind_counts) {
        if ca != cb {
            return Some(format!("kind {name}: {ca} vs {cb}"));
        }
    }
    if a.server_counts != b.server_counts {
        let servers: std::collections::BTreeSet<u32> = a
            .server_counts
            .keys()
            .chain(b.server_counts.keys())
            .copied()
            .collect();
        for s in servers {
            let ca = a.server_counts.get(&s).copied().unwrap_or(0);
            let cb = b.server_counts.get(&s).copied().unwrap_or(0);
            if ca != cb {
                return Some(format!("server {s}: {ca} vs {cb} events"));
            }
        }
    }
    if a.distinct_requests != b.distinct_requests {
        return Some(format!(
            "distinct requests: {} vs {}",
            a.distinct_requests, b.distinct_requests
        ));
    }
    None
}

/// Rewrites every server-valued field of the stream through `map`:
/// the `server` field everywhere, the destination server in `aux` for
/// server-to-server [`HopKind::Network`] hops and [`HopKind::Migration`],
/// and the server id carried in `request` by [`HopKind::Suspect`] /
/// [`HopKind::Unsuspect`]. [`NO_SERVER`] sentinels pass through unchanged.
pub fn relabel_servers(events: &[SpanEvent], map: impl Fn(u32) -> u32) -> Vec<SpanEvent> {
    let map_id = |id: u32| if id == NO_SERVER { id } else { map(id) };
    events
        .iter()
        .map(|ev| {
            let mut out = *ev;
            out.server = map_id(ev.server);
            match ev.kind {
                // aux 0 on a client→gateway network hop means "from the
                // client", and NO_SERVER (as u64) marks a response hop;
                // only genuine server ids are rewritten.
                HopKind::Network | HopKind::Migration
                    if ev.aux != 0 && ev.aux != NO_SERVER as u64 =>
                {
                    out.aux = map_id(ev.aux as u32) as u64;
                }
                HopKind::Suspect | HopKind::Unsuspect => {
                    out.request = map_id(ev.request as u32) as u64;
                }
                _ => {}
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_sim::Nanos;

    fn ev(request: u64, kind: HopKind, server: u32, aux: u64) -> SpanEvent {
        SpanEvent::instant(request, kind, server, aux, Nanos::from_micros(request))
    }

    #[test]
    fn digest_counts_and_display() {
        let events = vec![
            ev(1, HopKind::GatewayAdmit, 0, 0),
            ev(1, HopKind::Service, 1, 0),
            ev(1, HopKind::ClientDone, NO_SERVER, 0),
            ev(2, HopKind::GatewayAdmit, 0, 0),
        ];
        let d = TraceDigest::of(&events);
        assert_eq!(d.events, 4);
        assert_eq!(d.kind("admit"), 2);
        assert_eq!(d.kind("service"), 1);
        assert_eq!(d.distinct_requests, 2);
        assert_eq!(d.server_counts[&0], 2);
        let line = d.to_string();
        assert!(line.starts_with("events=4 servers=3 requests=2"));
        assert!(line.contains("admit=2"));
        assert!(!line.contains("shed"), "zero kinds omitted: {line}");
    }

    #[test]
    fn diff_names_the_first_divergent_component() {
        let base = vec![
            ev(1, HopKind::GatewayAdmit, 0, 0),
            ev(1, HopKind::Service, 1, 0),
        ];
        let d = TraceDigest::of(&base);
        assert_eq!(diff_digests(&d, &d), None);

        let extra = TraceDigest::of(&[base.clone(), vec![ev(2, HopKind::Service, 1, 0)]].concat());
        let msg = diff_digests(&d, &extra).expect("event counts differ");
        assert!(msg.contains("total events"), "{msg}");

        let moved = TraceDigest::of(&[base[0], ev(1, HopKind::Service, 0, 0)]);
        let msg = diff_digests(&d, &moved).expect("server counts differ");
        assert!(msg.contains("server 0"), "{msg}");
    }

    #[test]
    fn relabeling_preserves_unlabeled_digest() {
        let events = vec![
            ev(1, HopKind::GatewayAdmit, 0, 0),
            ev(1, HopKind::Network, 0, 2), // Server-to-server: aux is a dst.
            ev(1, HopKind::Network, 2, NO_SERVER as u64), // Response hop.
            ev(5, HopKind::Suspect, 1, 0), // request 5 is a server id.
            ev(9, HopKind::Migration, 0, 2),
            ev(1, HopKind::ClientDone, NO_SERVER, 0),
        ];
        // Swap servers 0 and 2 (and map 5 → 5: ids outside the swap stay).
        let swapped = relabel_servers(&events, |s| match s {
            0 => 2,
            2 => 0,
            other => other,
        });
        assert_eq!(swapped[1].server, 2);
        assert_eq!(swapped[1].aux, 0);
        assert_eq!(swapped[2].server, 0);
        assert_eq!(swapped[2].aux, NO_SERVER as u64, "sentinel preserved");
        assert_eq!(swapped[4].aux, 0);
        assert_eq!(swapped[5].server, NO_SERVER, "done stays at the client");
        let before = TraceDigest::of(&events);
        let after = TraceDigest::of(&swapped);
        assert_ne!(before.server_counts, after.server_counts);
        assert_eq!(before.unlabeled(), after.unlabeled());
    }
}
