//! Model-based verification for the ActOp reproduction.
//!
//! Everything else in this workspace *produces* behavior; this crate
//! checks it, three independent ways:
//!
//! * [`oracle`] — the analytic oracle. The SEDA emulator is an open
//!   Jackson network, so M/M/1 (the paper's Eq. 1, via the allocator's own
//!   [`SedaModel`](actop_seda::SedaModel)) and exact M/M/c closed forms
//!   predict its per-stage sojourns and end-to-end latency. The oracle
//!   drives matched workloads and reports predicted-vs-measured error,
//!   including the divergence as utilization → 1 (`bench_validate` emits
//!   it as `BENCH_validate.json`).
//! * [`invariants`] — the trace lifecycle checker. A streaming pass over
//!   recorded [`SpanEvent`](actop_trace::SpanEvent)s enforcing per-server
//!   monotone sim-time, exactly-one-terminal per admitted request, no
//!   service during a crash window of the installed fault plan, migration
//!   transfer windows clear of endpoint crashes, and the forward-hop cap.
//!   The `check_trace` binary runs it over exported `.spans.jsonl` files.
//! * [`scenario`] — the metamorphic/fuzz harness. Randomized scenarios
//!   (workload × fault plan × controllers × thread allocation) run through
//!   the full runtime and the invariant checker, with deterministic greedy
//!   shrinking when a scenario fails; cross-run metamorphic laws live in
//!   this crate's integration tests.
//!
//! None of this is wired into the default benchmark paths: with
//! verification off, runs are byte-identical to the unverified build.

pub mod digest;
pub mod invariants;
pub mod oracle;
pub mod scenario;

pub use digest::{diff_digests, relabel_servers, TraceDigest};
pub use invariants::{check_events, check_jsonl, CheckReport, CheckerConfig, Violation};
pub use oracle::{
    divergence_curve, validate_pipeline, OracleConfig, StagePrediction, ValidationPoint,
};
pub use scenario::{fuzz_one, run_scenario, shrink, Scenario, ScenarioOutcome};
