//! Randomized full-runtime scenarios with deterministic shrinking.
//!
//! A [`Scenario`] is one seed-derived point in the space the runtime must
//! survive: a uniform open-loop workload × a random fault plan × any
//! combination of the failure detector and the two ActOp controllers × a
//! thread allocation. [`run_scenario`] executes it end to end with full
//! trace sampling, feeds the recorded spans through the lifecycle checker
//! ([`crate::invariants`]), and cross-checks request conservation against
//! the run summary. A failing scenario is [`shrink`]-able: a greedy,
//! deterministic pass that repeatedly re-runs smaller variants (drop one
//! fault, disable one controller, halve the load, ...) and keeps the
//! smallest one that still fails — the fuzzer's counterexamples are
//! reproducible from `(seed, shrink budget)` alone.

use actop_chaos::{install_plan, FaultPlan};
use actop_core::controllers::{
    install_actop, ActOpConfig, PartitionAgentConfig, ThreadAgentConfig,
};
use actop_core::experiment::{run_steady_state, RunSummary};
use actop_partition::RepartitionPolicyKind;
use actop_runtime::{
    ActorId, Cluster, DetectorConfig, ReplicationConfig, RuntimeConfig, SnapshotConfig,
    SplitThresholds, TraceConfig,
};
use actop_sim::{DetRng, Engine, Nanos};
use actop_workloads::uniform::{UniformConfig, UniformWorkload};

use crate::digest::TraceDigest;
use crate::invariants::{check_events, CheckReport, CheckerConfig};

/// Per-request timeout every scenario runs with; bounds how long a
/// request can stay in flight and therefore the conservation slack.
const SCENARIO_TIMEOUT: Nanos = Nanos::from_secs(1);

/// Migration transfer window, so the migration-over-crash invariant has
/// teeth in every scenario.
const SCENARIO_TRANSFER: Nanos = Nanos::from_millis(2);

/// One point in the scenario space. All fields are plain data so shrink
/// candidates are cheap to derive.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Run seed (workload, placement, sampling all derive from it).
    pub seed: u64,
    /// Cluster size.
    pub servers: usize,
    /// Open-loop request rate, requests/s.
    pub request_rate: f64,
    /// Distinct actors.
    pub actors: u64,
    /// Warmup before the measurement window, seconds.
    pub warmup_secs: f64,
    /// Measurement window, seconds (the fault plan's horizon).
    pub measure_secs: f64,
    /// Heartbeat failure detector on?
    pub detector: bool,
    /// Locality partition controller on?
    pub partition_ctl: bool,
    /// Thread-allocation controller on?
    pub thread_ctl: bool,
    /// Hot-actor replication on? Scenarios run it with thresholds far
    /// below any real deployment's so ordinary uniform actors split, and
    /// the replica lifecycle invariants (one primary, reads only inside
    /// split → drop windows, no migration while replicated) see real
    /// split/read/drop traffic interleaved with faults.
    pub replication: bool,
    /// Asynchronous snapshots on? Snapshot scenarios add a write-tagged
    /// request stream (a tenth of the read rate) so rounds capture real
    /// state transitions, and the snapshot lifecycle invariants see
    /// rounds, captures, and restores interleaved with faults.
    pub snapshot: bool,
    /// Snapshot round interval, milliseconds (used only when `snapshot`).
    pub snapshot_interval_ms: u64,
    /// Which repartitioning policy the partition controller drives (used
    /// only when `partition_ctl`). Every selectable policy must survive
    /// the same chaos the default does.
    pub policy: RepartitionPolicyKind,
    /// Initial threads per SEDA stage.
    pub threads_per_stage: usize,
    /// The fault schedule, authored relative to measurement start.
    pub plan: FaultPlan,
}

impl Scenario {
    /// Derives a scenario from a seed; same seed, same scenario.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut rng = DetRng::stream(seed, 0xF0225CEA);
        let servers = 2 + rng.below(4);
        let request_rate = (rng.uniform(200.0, 1_200.0) * 10.0).round() / 10.0;
        let actors = 500 + rng.range_inclusive(0, 4_000);
        let measure_secs = (rng.uniform(4.0, 10.0) * 10.0).round() / 10.0;
        let detector = rng.chance(0.75);
        let partition_ctl = rng.chance(0.5);
        let thread_ctl = rng.chance(0.5);
        let threads_per_stage = 2 + rng.below(7);
        let fault_count = rng.below(8);
        let plan = FaultPlan::random(
            rng.next_u64(),
            servers as u32,
            Nanos::from_secs_f64(measure_secs),
            fault_count,
        );
        // Drawn after every pre-existing field so adding the replication
        // dimension re-rolled nothing else for already-pinned seeds.
        let replication = rng.chance(0.5);
        // Same rule again: the snapshot dimension draws last so every
        // earlier field keeps its pre-snapshot value for a given seed.
        let snapshot = rng.chance(0.5);
        let snapshot_interval_ms = 100 + rng.below(400) as u64;
        // Last-of-all for the same reason: the policy dimension re-rolls
        // nothing an already-pinned seed drew before it existed.
        let policy = RepartitionPolicyKind::ALL[rng.below(RepartitionPolicyKind::ALL.len())];
        Scenario {
            seed,
            servers,
            request_rate,
            actors,
            warmup_secs: 2.0,
            measure_secs,
            detector,
            partition_ctl,
            thread_ctl,
            replication,
            snapshot,
            snapshot_interval_ms,
            policy,
            threads_per_stage,
            plan,
        }
    }

    /// Everything needed to reproduce the scenario by hand, including the
    /// fault plan in its serialized form.
    pub fn describe(&self) -> String {
        format!(
            "seed={:#x} servers={} rate={}/s actors={} warmup={}s measure={}s \
             detector={} partition_ctl={} thread_ctl={} replication={} snapshot={} \
             snap_interval={}ms policy={} threads/stage={}\n{}",
            self.seed,
            self.servers,
            self.request_rate,
            self.actors,
            self.warmup_secs,
            self.measure_secs,
            self.detector,
            self.partition_ctl,
            self.thread_ctl,
            self.replication,
            self.snapshot,
            self.snapshot_interval_ms,
            self.policy.name(),
            self.threads_per_stage,
            self.plan.to_text()
        )
    }

    fn warmup(&self) -> Nanos {
        Nanos::from_secs_f64(self.warmup_secs)
    }

    fn measure(&self) -> Nanos {
        Nanos::from_secs_f64(self.measure_secs)
    }

    fn duration(&self) -> Nanos {
        self.warmup() + self.measure()
    }

    /// Shrink candidates, in try order: structurally smaller variants
    /// first (drop one fault event, drop controllers), then load/size
    /// reductions. Deterministic and finite.
    fn candidates(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for i in 0..self.plan.events.len() {
            let mut c = self.clone();
            c.plan.events.remove(i);
            out.push(c);
        }
        for flag in 0..5 {
            let mut c = self.clone();
            let on = match flag {
                0 => std::mem::replace(&mut c.partition_ctl, false),
                1 => std::mem::replace(&mut c.thread_ctl, false),
                2 => std::mem::replace(&mut c.replication, false),
                3 => std::mem::replace(&mut c.snapshot, false),
                _ => std::mem::replace(&mut c.detector, false),
            };
            if on {
                out.push(c);
            }
        }
        if self.measure_secs > 2.0 {
            let mut c = self.clone();
            c.measure_secs = (self.measure_secs / 2.0).max(2.0);
            out.push(c);
        }
        if self.request_rate > 100.0 {
            let mut c = self.clone();
            c.request_rate = (self.request_rate / 2.0).max(100.0);
            out.push(c);
        }
        if self.actors > 200 {
            let mut c = self.clone();
            c.actors = (self.actors / 2).max(200);
            out.push(c);
        }
        // Servers the plan never touches are dead weight.
        let needed = self
            .plan
            .max_server()
            .map(|m| (m as usize + 1).max(2))
            .unwrap_or(2);
        if needed < self.servers {
            let mut c = self.clone();
            c.servers = needed;
            out.push(c);
        }
        if self.threads_per_stage > 2 {
            let mut c = self.clone();
            c.threads_per_stage = 2;
            out.push(c);
        }
        out
    }
}

/// What one scenario execution produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The steady-state run summary.
    pub summary: RunSummary,
    /// The lifecycle checker's report over the full-sample trace.
    pub report: CheckReport,
    /// Aggregate trace fingerprint (used by determinism cross-checks).
    pub digest: TraceDigest,
    /// Every failed check, human-readable. Empty = the scenario passed.
    pub failures: Vec<String>,
}

impl ScenarioOutcome {
    /// True when every invariant and cross-check held.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Open-loop Poisson stream of write-tagged (tag 1) requests, the state
/// traffic snapshot scenarios run alongside the uniform read workload.
fn write_tick(
    cluster: &mut Cluster,
    engine: &mut Engine<Cluster>,
    actors: u64,
    rate: f64,
    duration: Nanos,
    mut rng: DetRng,
) {
    let actor = ActorId(rng.range_inclusive(0, actors - 1));
    cluster.submit_client_request(engine, actor, 1, 600);
    let gap = Nanos::from_secs_f64(rng.exp(1.0 / rate));
    if engine.now() + gap < duration {
        engine.schedule_after(gap, move |c: &mut Cluster, e| {
            write_tick(c, e, actors, rate, duration, rng);
        });
    }
}

/// Runs a scenario end to end and checks it.
pub fn run_scenario(sc: &Scenario) -> ScenarioOutcome {
    let (app, workload) = UniformWorkload::build(UniformConfig {
        actors: sc.actors,
        request_rate: sc.request_rate,
        request_bytes: 600,
        reply_bytes: 600,
        cpu_ns: 60_000.0,
        blocking_ns: 0.0,
        duration: sc.duration(),
        seed: sc.seed,
    });
    let mut rt = RuntimeConfig::paper_testbed(sc.seed);
    rt.servers = sc.servers;
    rt.initial_threads_per_stage = sc.threads_per_stage;
    rt.request_timeout = Some(SCENARIO_TIMEOUT);
    rt.migration_transfer = Some(SCENARIO_TRANSFER);
    rt.detector = sc.detector.then(DetectorConfig::default);
    rt.replication = sc.replication.then(|| ReplicationConfig {
        // A 40 us split trigger (1e-5 of a 500 ms x 8-core window) sits
        // inside the per-actor demand range the workload draws span
        // (~1.3-72 us per window), so high-rate scenarios split broadly,
        // low-rate ones barely — and the 0.6 drop hysteresis churns
        // replicas against faults, which is exactly what the replica
        // lifecycle invariants want to see.
        thresholds: SplitThresholds {
            capacity_fraction: 1.0e-5,
            ..SplitThresholds::default()
        },
        check_interval: Nanos::from_millis(500),
        cooldown: Nanos::from_secs(1),
        min_load_ns: 20_000,
        ..ReplicationConfig::default()
    });
    // Default masks keep snapshot write-tags (0b10) and replication
    // read-tags (0b1) disjoint, so both dimensions compose in one run.
    rt.snapshot = sc.snapshot.then(|| SnapshotConfig {
        interval: Nanos::from_millis(sc.snapshot_interval_ms),
        capture_window: Nanos::from_millis(sc.snapshot_interval_ms / 2),
        ..SnapshotConfig::default()
    });
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0, // Every request: the checker wants whole lifecycles.
        seed: sc.seed,
        ..TraceConfig::default()
    });
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    if sc.snapshot {
        // The uniform workload is all tag-0 reads; snapshot rounds with
        // nothing to capture would test nothing. Add a write stream at a
        // tenth of the read rate so every round sees live transitions.
        let rate = (sc.request_rate / 10.0).max(50.0);
        let rng = DetRng::stream(sc.seed, 0x57A7E);
        let (actors, duration) = (sc.actors, sc.duration());
        engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
            write_tick(c, e, actors, rate, duration, rng);
        });
    }
    install_actop(
        &mut engine,
        sc.servers,
        &ActOpConfig {
            partition: sc.partition_ctl.then(|| {
                PartitionAgentConfig::with_interval(Nanos::from_millis(500)).with_policy(sc.policy)
            }),
            threads: sc.thread_ctl.then(ThreadAgentConfig::default),
        },
    );
    cluster.install_heartbeats(&mut engine, sc.duration());
    cluster.install_replication(&mut engine, sc.duration());
    cluster.install_snapshots(&mut engine, sc.duration());
    install_plan(&mut engine, &cluster, &sc.plan, sc.warmup());
    let summary = run_steady_state(&mut engine, &mut cluster, sc.warmup(), sc.measure());

    let checker = CheckerConfig {
        crash_windows: sc.plan.crash_windows(
            sc.servers,
            sc.warmup(),
            // Unrecovered crashes stay down past the run's end.
            sc.duration() + Nanos::from_secs(5),
        ),
        migration_transfer: Some(SCENARIO_TRANSFER),
        // Every commit stalls exactly the transfer window, and that
        // window is what the cost-aware scoring prices moves at — so the
        // window IS the budget, with zero headroom.
        stall_budget: Some(SCENARIO_TRANSFER),
        open_at_end_grace: SCENARIO_TIMEOUT * 2,
        ..CheckerConfig::default()
    };
    let report = check_events(cluster.trace.spans(), &checker);
    let digest = TraceDigest::of(cluster.trace.spans());

    let mut failures = Vec::new();
    if cluster.trace.dropped_spans() > 0 {
        // Checking a truncated trace would report phantom violations.
        failures.push(format!(
            "span buffer overflow: {} events dropped",
            cluster.trace.dropped_spans()
        ));
    } else {
        const MAX_REPORTED: usize = 8;
        for v in report.violations.iter().take(MAX_REPORTED) {
            failures.push(v.to_string());
        }
        if report.violations.len() > MAX_REPORTED {
            failures.push(format!(
                "... and {} more violations",
                report.violations.len() - MAX_REPORTED
            ));
        }
    }
    // Conservation: every submitted request completes, is rejected, or
    // times out, up to the in-flight residue a 1 s timeout allows.
    let accounted = summary.completed + summary.rejected + summary.timed_out;
    let in_flight = summary.submitted.saturating_sub(accounted);
    let slack = (sc.request_rate * 2.0 * SCENARIO_TIMEOUT.as_secs_f64()) as u64 + 500;
    if in_flight > slack {
        failures.push(format!(
            "conservation: {} of {} submitted requests unaccounted (> slack {})",
            in_flight, summary.submitted, slack
        ));
    }

    ScenarioOutcome {
        summary,
        report,
        digest,
        failures,
    }
}

/// Greedily shrinks a failing scenario: re-runs candidate reductions and
/// commits to the first one that still fails, until no reduction fails or
/// the re-run budget is spent. Returns the smallest failing scenario found
/// and its outcome (the input itself if nothing smaller fails).
pub fn shrink(sc: &Scenario, budget: usize) -> (Scenario, ScenarioOutcome) {
    let mut current = sc.clone();
    let mut outcome = run_scenario(&current);
    assert!(
        !outcome.is_ok(),
        "shrink called on a passing scenario: {}",
        current.describe()
    );
    let mut runs = 1usize;
    'outer: while runs < budget {
        for cand in current.candidates() {
            if runs >= budget {
                break 'outer;
            }
            let cand_outcome = run_scenario(&cand);
            runs += 1;
            if !cand_outcome.is_ok() {
                current = cand;
                outcome = cand_outcome;
                continue 'outer; // Restart from the smaller scenario.
            }
        }
        break; // No candidate still fails: local minimum.
    }
    (current, outcome)
}

/// Fuzzer step: derive the scenario for `seed`, run it, and — when it
/// fails — shrink it within `shrink_budget` re-runs. Returns the scenario
/// that should be reported (shrunk on failure) and its outcome.
pub fn fuzz_one(seed: u64, shrink_budget: usize) -> (Scenario, ScenarioOutcome) {
    let sc = Scenario::from_seed(seed);
    let outcome = run_scenario(&sc);
    if outcome.is_ok() {
        (sc, outcome)
    } else {
        shrink(&sc, shrink_budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_seed_deterministic() {
        let a = Scenario::from_seed(42);
        let b = Scenario::from_seed(42);
        assert_eq!(a.describe(), b.describe());
        let c = Scenario::from_seed(43);
        assert_ne!(a.describe(), c.describe());
    }

    #[test]
    fn candidates_are_strictly_smaller_variants() {
        let sc = Scenario::from_seed(7);
        let cands = sc.candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            let smaller = c.plan.events.len() < sc.plan.events.len()
                || (!c.partition_ctl && sc.partition_ctl)
                || (!c.thread_ctl && sc.thread_ctl)
                || (!c.snapshot && sc.snapshot)
                || (!c.detector && sc.detector)
                || c.measure_secs < sc.measure_secs
                || c.request_rate < sc.request_rate
                || c.actors < sc.actors
                || c.servers < sc.servers
                || c.threads_per_stage < sc.threads_per_stage;
            assert!(smaller, "candidate is not a reduction");
        }
    }

    #[test]
    fn benign_scenario_runs_clean_and_deterministic() {
        let sc = Scenario {
            seed: 11,
            servers: 3,
            request_rate: 300.0,
            actors: 1_000,
            warmup_secs: 1.0,
            measure_secs: 3.0,
            detector: false,
            partition_ctl: false,
            thread_ctl: false,
            replication: false,
            snapshot: false,
            snapshot_interval_ms: 200,
            policy: RepartitionPolicyKind::Exchange,
            threads_per_stage: 4,
            plan: FaultPlan::new("none"),
        };
        let a = run_scenario(&sc);
        assert!(a.is_ok(), "failures: {:?}", a.failures);
        assert!(a.summary.completed > 0);
        let b = run_scenario(&sc);
        assert_eq!(a.digest, b.digest, "same scenario, same trace");
        assert_eq!(a.summary.completed, b.summary.completed);
    }

    #[test]
    fn replication_scenarios_split_and_stay_clean() {
        // High per-actor rate so the scenario thresholds split real
        // actors: the replica invariants must see live split / read /
        // drop traffic, not vacuously pass on an empty event set.
        let sc = Scenario {
            seed: 23,
            servers: 4,
            request_rate: 1_000.0,
            actors: 400,
            warmup_secs: 1.0,
            measure_secs: 4.0,
            detector: false,
            partition_ctl: false,
            thread_ctl: false,
            replication: true,
            snapshot: false,
            snapshot_interval_ms: 200,
            policy: RepartitionPolicyKind::Exchange,
            threads_per_stage: 4,
            plan: FaultPlan::new("none"),
        };
        let out = run_scenario(&sc);
        assert!(out.is_ok(), "failures: {:?}", out.failures);
        assert!(
            out.report.kind_count("split") > 0,
            "no splits fired; thresholds too high for the workload"
        );
        assert!(
            out.report.kind_count("replica-read") > 0,
            "splits fired but no read was replica-routed"
        );
        let b = run_scenario(&sc);
        assert_eq!(out.digest, b.digest, "replication must stay deterministic");
    }

    #[test]
    fn snapshot_scenarios_capture_under_chaos_and_stay_clean() {
        // A crash + recovery over live snapshot rounds: the checker's
        // snapshot lifecycle pass must see real round / capture / write
        // traffic and still come back clean.
        let sc = Scenario {
            seed: 31,
            servers: 3,
            request_rate: 400.0,
            actors: 600,
            warmup_secs: 1.0,
            measure_secs: 4.0,
            detector: false,
            partition_ctl: false,
            thread_ctl: false,
            replication: false,
            snapshot: true,
            snapshot_interval_ms: 150,
            policy: RepartitionPolicyKind::Exchange,
            threads_per_stage: 4,
            plan: FaultPlan::crash_restore(
                1,
                Nanos::from_millis(500),
                Nanos::from_millis(1_500),
                Nanos::from_secs(3),
            ),
        };
        let out = run_scenario(&sc);
        assert!(out.is_ok(), "failures: {:?}", out.failures);
        assert!(
            out.report.kind_count("state-write") > 0,
            "write stream produced no state transitions"
        );
        assert!(
            out.report.kind_count("snap-capture") > 0,
            "snapshot rounds captured nothing"
        );
        let b = run_scenario(&sc);
        assert_eq!(out.digest, b.digest, "snapshots must stay deterministic");
    }
}
