//! The analytic oracle: queueing-theory closed forms vs the DES.
//!
//! The emulator in `actop-seda` *is* a Jackson network — open Poisson
//! arrivals, exponential per-thread service, deterministic tandem routing —
//! so queueing theory predicts its steady state exactly. This module drives
//! the emulator with matched workloads and compares, per stage:
//!
//! * the paper's Eq. 1 approximation (pool `c` threads of rate `s` into one
//!   M/M/1 server of rate `c·s`), built from the same [`SedaModel`] the
//!   thread allocator optimizes, and
//! * the exact M/M/c sojourn (Erlang C),
//!
//! against the measured mean per-stage sojourn and end-to-end latency. For
//! single-thread stages the two closed forms coincide and the simulator
//! must agree within a tight band at low/medium utilization; as ρ → 1 the
//! relative error of any finite run grows (and the pooled M/M/1
//! approximation visibly diverges from M/M/c for multi-thread stages) —
//! the divergence curve is the repo's Fig.-7-style validation artifact,
//! emitted by `bench_validate` as `BENCH_validate.json`.

use actop_seda::emulator::{
    run_emulator, EmuController, EmuStageConfig, EmulatorConfig, EmulatorResult,
};
use actop_seda::model::{mm1_latency, mmc_latency};
use actop_seda::{SedaModel, StageParams};

/// One stage's predicted-vs-measured comparison.
#[derive(Debug, Clone, Copy)]
pub struct StagePrediction {
    /// Stage index in the pipeline.
    pub stage: usize,
    /// Threads serving the stage.
    pub threads: usize,
    /// Per-thread service rate, events/s.
    pub service_rate: f64,
    /// Analytic utilization `λ / (s·c)`.
    pub rho: f64,
    /// Measured utilization (busy-thread integral / window / threads).
    pub measured_rho: f64,
    /// Eq. 1 pooled-M/M/1 mean sojourn, seconds (`None` → predicted
    /// unstable, stored as NaN).
    pub mm1_secs: f64,
    /// Exact M/M/c mean sojourn, seconds (NaN when unstable).
    pub mmc_secs: f64,
    /// Measured mean sojourn (wait + service), seconds.
    pub measured_secs: f64,
    /// Measured mean queue wait, seconds.
    pub measured_wait_secs: f64,
    /// Measured mean service time, seconds.
    pub measured_service_secs: f64,
}

impl StagePrediction {
    /// Relative error of the measured sojourn against the pooled M/M/1
    /// prediction.
    pub fn mm1_rel_err(&self) -> f64 {
        ((self.measured_secs - self.mm1_secs) / self.mm1_secs).abs()
    }

    /// Relative error against the exact M/M/c prediction.
    pub fn mmc_rel_err(&self) -> f64 {
        ((self.measured_secs - self.mmc_secs) / self.mmc_secs).abs()
    }
}

/// One validation run: a pipeline at one arrival rate.
#[derive(Debug, Clone)]
pub struct ValidationPoint {
    /// Poisson arrival rate, events/s.
    pub arrival_rate: f64,
    /// Bottleneck utilization (max per-stage ρ).
    pub rho_max: f64,
    /// Per-stage comparisons.
    pub stages: Vec<StagePrediction>,
    /// Measured mean end-to-end latency, seconds.
    pub measured_e2e_secs: f64,
    /// Σ per-stage pooled-M/M/1 sojourns, seconds.
    pub mm1_e2e_secs: f64,
    /// Σ per-stage exact M/M/c sojourns, seconds.
    pub mmc_e2e_secs: f64,
    /// The same Eq. 1 prediction computed through [`SedaModel`] (the
    /// allocator's own code path), seconds. Must equal `mm1_e2e_secs` up
    /// to float noise — this ties the oracle to the model the controller
    /// optimizes, not a re-derivation of it.
    pub model_e2e_secs: f64,
    /// Events that completed the pipeline.
    pub completed: u64,
}

impl ValidationPoint {
    /// Relative error of the measured end-to-end mean against Σ M/M/c.
    pub fn e2e_rel_err(&self) -> f64 {
        ((self.measured_e2e_secs - self.mmc_e2e_secs) / self.mmc_e2e_secs).abs()
    }
}

/// A pipeline validation configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// The stages under test.
    pub stages: Vec<EmuStageConfig>,
    /// Poisson arrival rate, events/s.
    pub arrival_rate: f64,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Run seed.
    pub seed: u64,
}

impl OracleConfig {
    /// The arrival rate that puts the bottleneck stage at utilization
    /// `rho` for the given stage set.
    pub fn rate_for_rho(stages: &[EmuStageConfig], rho: f64) -> f64 {
        let capacity = stages
            .iter()
            .map(|s| s.service_rate * s.initial_threads as f64)
            .fold(f64::INFINITY, f64::min);
        rho * capacity
    }
}

/// Runs the emulator with a fixed allocation and compares measured
/// per-stage sojourns and end-to-end latency against the closed forms.
///
/// # Panics
///
/// Panics on degenerate configurations (empty stages, non-positive rates).
pub fn validate_pipeline(cfg: &OracleConfig) -> ValidationPoint {
    let emu = EmulatorConfig {
        stages: cfg.stages.clone(),
        arrival_rate: cfg.arrival_rate,
        duration_secs: cfg.duration_secs,
        // One window covering the whole run: the Fixed controller never
        // drains stats, so `final_stats` is run-global.
        control_interval_secs: cfg.duration_secs,
        controller: EmuController::Fixed,
        seed: cfg.seed,
    };
    let result = run_emulator(&emu);
    point_from_result(cfg, &result)
}

fn point_from_result(cfg: &OracleConfig, result: &EmulatorResult) -> ValidationPoint {
    let lambda = cfg.arrival_rate;
    let mut stages = Vec::with_capacity(cfg.stages.len());
    for (i, stage) in cfg.stages.iter().enumerate() {
        let c = stage.initial_threads;
        let s = stage.service_rate;
        let sj = &result.stage_sojourn[i];
        let st = &result.final_stats[i];
        stages.push(StagePrediction {
            stage: i,
            threads: c,
            service_rate: s,
            rho: lambda / (s * c as f64),
            measured_rho: st.mean_busy() / c as f64,
            mm1_secs: mm1_latency(lambda, s * c as f64).unwrap_or(f64::NAN),
            mmc_secs: mmc_latency(lambda, s, c).unwrap_or(f64::NAN),
            measured_secs: sj.mean_sojourn_secs(),
            measured_wait_secs: sj.mean_wait_secs(),
            measured_service_secs: sj.mean_service_secs(),
        });
    }
    let mm1_e2e = stages.iter().map(|s| s.mm1_secs).sum();
    let mmc_e2e = stages.iter().map(|s| s.mmc_secs).sum();
    let model_e2e = seda_model_e2e(cfg).unwrap_or(f64::NAN);
    ValidationPoint {
        arrival_rate: lambda,
        rho_max: stages.iter().map(|s| s.rho).fold(0.0, f64::max),
        stages,
        measured_e2e_secs: result.latency.mean() / 1e9,
        mm1_e2e_secs: mm1_e2e,
        mmc_e2e_secs: mmc_e2e,
        model_e2e_secs: model_e2e,
        completed: result.completed,
    }
}

/// The Eq. 1 end-to-end prediction computed through [`SedaModel`] itself.
///
/// `jackson_latency` is normalized per arrival across the network
/// (`Σ λᵢWᵢ / λ_tot`); in a tandem pipeline every stage sees the full
/// arrival rate, so the end-to-end sum is the model value scaled back by
/// `λ_tot / λ`.
fn seda_model_e2e(cfg: &OracleConfig) -> Option<f64> {
    let params: Vec<StageParams> = cfg
        .stages
        .iter()
        .map(|s| StageParams::cpu_bound(cfg.arrival_rate, s.service_rate))
        .collect();
    let total_threads: usize = cfg.stages.iter().map(|s| s.initial_threads).sum();
    let model = SedaModel::new(params, total_threads.max(1), 1e-6).ok()?;
    let threads: Vec<f64> = cfg
        .stages
        .iter()
        .map(|s| s.initial_threads as f64)
        .collect();
    let per_arrival = model.jackson_latency(&threads)?;
    Some(per_arrival * cfg.stages.len() as f64)
}

/// Runs one pipeline across a utilization sweep: for each target ρ the
/// arrival rate is set so the bottleneck stage runs at that utilization.
/// This is the divergence-curve generator behind `BENCH_validate.json`.
pub fn divergence_curve(
    stages: &[EmuStageConfig],
    rhos: &[f64],
    duration_secs: f64,
    seed: u64,
) -> Vec<ValidationPoint> {
    rhos.iter()
        .map(|&rho| {
            validate_pipeline(&OracleConfig {
                stages: stages.to_vec(),
                arrival_rate: OracleConfig::rate_for_rho(stages, rho),
                duration_secs,
                seed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_thread_stages(rates: &[f64]) -> Vec<EmuStageConfig> {
        rates
            .iter()
            .map(|&service_rate| EmuStageConfig {
                service_rate,
                initial_threads: 1,
            })
            .collect()
    }

    #[test]
    fn mm1_and_mmc_coincide_for_single_thread_stages() {
        let stages = single_thread_stages(&[900.0, 1_100.0]);
        let cfg = OracleConfig {
            stages,
            arrival_rate: 400.0,
            duration_secs: 60.0,
            seed: 9,
        };
        let point = validate_pipeline(&cfg);
        for s in &point.stages {
            assert!((s.mm1_secs - s.mmc_secs).abs() < 1e-12);
        }
        assert!((point.mm1_e2e_secs - point.mmc_e2e_secs).abs() < 1e-12);
    }

    #[test]
    fn seda_model_path_matches_direct_sum() {
        let stages = vec![
            EmuStageConfig {
                service_rate: 500.0,
                initial_threads: 3,
            },
            EmuStageConfig {
                service_rate: 800.0,
                initial_threads: 2,
            },
        ];
        let cfg = OracleConfig {
            stages,
            arrival_rate: 700.0,
            duration_secs: 30.0,
            seed: 1,
        };
        let point = validate_pipeline(&cfg);
        assert!(
            (point.model_e2e_secs - point.mm1_e2e_secs).abs() < 1e-9,
            "SedaModel Eq.1 {} vs direct sum {}",
            point.model_e2e_secs,
            point.mm1_e2e_secs
        );
    }

    #[test]
    fn rate_for_rho_targets_the_bottleneck() {
        let stages = vec![
            EmuStageConfig {
                service_rate: 500.0,
                initial_threads: 2, // Capacity 1000.
            },
            EmuStageConfig {
                service_rate: 1_500.0,
                initial_threads: 1, // Capacity 1500.
            },
        ];
        let rate = OracleConfig::rate_for_rho(&stages, 0.5);
        assert!((rate - 500.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_prediction_is_nan_not_panic() {
        let stages = single_thread_stages(&[100.0]);
        let point = validate_pipeline(&OracleConfig {
            stages,
            arrival_rate: 150.0, // ρ = 1.5: no steady state exists.
            duration_secs: 5.0,
            seed: 3,
        });
        assert!(point.stages[0].mm1_secs.is_nan());
        assert!(point.stages[0].mmc_secs.is_nan());
        assert!(point.measured_e2e_secs.is_finite(), "the sim still ran");
    }
}
