//! Value-generation strategies.
//!
//! A [`Strategy`] draws a value from a deterministic [`TestRng`]. Unlike
//! real proptest there is no shrinking and no persisted failure corpus;
//! strategies are plain generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying otherwise.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values for which `f` returns `true`, retrying otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Bound on rejection-sampling retries before a filter gives up.
const FILTER_RETRIES: u32 = 100_000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.below_u128(span)) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.below_u128(span)) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
)(A, B, C, D, E, F, G)(A, B, C, D, E, F, G, H)(
    A, B, C, D, E, F, G, H, I
)(A, B, C, D, E, F, G, H, I, J));

/// Length specification for [`crate::collection::vec`]: a fixed size or a
/// half-open/inclusive range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u128;
        let len = self.size.lo + rng.below_u128(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Full-range uniform strategy for a primitive type, via [`any`].
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` entry point: uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 0
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-50i64..100).generate(&mut rng);
            assert!((-50..100).contains(&s));
            let f = (0.25f64..=1.0).generate(&mut rng);
            assert!((0.25..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_and_tuples() {
        let mut rng = TestRng::new(2);
        let strat = crate::collection::vec((0u8..10, 1u64..5), 0..24);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 24);
        }
        let fixed = crate::collection::vec(0u8..10, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(3);
        let s = (1u32..10)
            .prop_map(|x| x * 2)
            .prop_filter_map("even only", |x| (x % 4 == 0).then_some(x));
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 4, 0);
        }
        let flat = (2usize..5).prop_flat_map(|n| crate::collection::vec(0u8..4, n));
        for _ in 0..100 {
            let v = flat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
