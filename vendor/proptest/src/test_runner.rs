//! The case loop and its deterministic RNG.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below_u128(0)");
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}

/// Derives a stable seed for one test function's case stream.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `case` for each generated case; on panic, reports which case failed
/// (cases are reproducible: the stream depends only on the test name).
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut case: impl FnMut(&mut TestRng)) {
    let base = fnv1a(test_name);
    for i in 0..config.cases {
        let mut rng = TestRng::new(
            base.wrapping_add(i as u64)
                .wrapping_mul(0xa076_1d64_78bd_642f),
        );
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            eprintln!(
                "proptest shim: '{test_name}' failed at case {i}/{} (deterministic seed)",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_cases_runs_requested_count() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "counter", |_| n += 1);
        assert_eq!(n, 17);
    }
}
