//! Offline property-testing shim.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (small) subset of the `proptest` API the workspace's
//! property tests use: range/tuple/vec/option strategies, the `prop_map` /
//! `prop_flat_map` / `prop_filter_map` combinators, the `proptest!` macro
//! with `ProptestConfig`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible across runs and machines) and there is
//! no shrinking — a failing case reports its case index instead.

pub mod strategy;

pub mod test_runner;

/// `proptest::collection` — sized collections of strategy-generated values.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `proptest::prelude` — the items property tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}
