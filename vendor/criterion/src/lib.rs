//! Offline microbenchmark shim.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for `criterion` with the same surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement: each benchmark is warmed up (~0.5 s), then timed over
//! batches sized to ~100 ms each; the per-iteration mean, minimum batch
//! mean, and iteration count are printed. No statistics files are written.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent warming a benchmark up.
const WARMUP: Duration = Duration::from_millis(500);
/// Target wall-clock spent measuring a benchmark.
const MEASURE: Duration = Duration::from_secs(2);
/// Number of timed batches the measurement window is split into.
const BATCHES: u32 = 20;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// No-op for CLI-argument compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { result: None };
        f(&mut bencher);
        match bencher.result {
            Some(r) => {
                println!(
                    "{name:<44} time: [{} {} {}]  ({} iters)",
                    fmt_ns(r.min_ns),
                    fmt_ns(r.mean_ns),
                    fmt_ns(r.max_ns),
                    r.iters,
                );
            }
            None => println!("{name:<44} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

/// One benchmark's measurement summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug)]
pub struct Bencher {
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, preventing its result from being optimized out.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Estimate the cost of one iteration.
        let mut probe_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..probe_iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(10) || probe_iters > u64::MAX / 2 {
                break elapsed.as_secs_f64() / probe_iters as f64;
            }
            probe_iters *= 2;
        };
        // Warm up.
        let warm_iters = ((WARMUP.as_secs_f64() / per_iter) as u64).max(1);
        let start = Instant::now();
        for _ in 0..warm_iters {
            black_box(routine());
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measure in batches.
        let batch_iters = ((MEASURE.as_secs_f64() / BATCHES as f64 / per_iter) as u64).max(1);
        let mut batch_means = Vec::with_capacity(BATCHES as usize);
        let mut total_iters = 0u64;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch_iters as f64;
            batch_means.push(ns);
            total_iters += batch_iters;
        }
        let mean = batch_means.iter().sum::<f64>() / batch_means.len() as f64;
        let min = batch_means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = batch_means.iter().cloned().fold(0.0f64, f64::max);
        self.result = Some(Measurement {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters: total_iters,
        });
    }
}

/// Formats nanoseconds with criterion-like unit scaling.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.30 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
    }
}
