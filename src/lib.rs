//! # ActOp — optimizing distributed actor systems for dynamic services
//!
//! A from-scratch Rust reproduction of *Optimizing Distributed Actor
//! Systems for Dynamic Interactive Services* (EuroSys 2016): a runtime
//! mechanism that cuts the end-to-end latency of actor-based cloud
//! services by (1) migrating frequently-communicating actors onto the same
//! server with a fully distributed balanced graph-partitioning protocol,
//! and (2) re-solving each server's SEDA thread allocation online from a
//! queuing model with a closed-form optimum.
//!
//! This crate is the facade: it re-exports the public API of the workspace
//! crates so applications can depend on `actop` alone.
//!
//! * [`sim`] — deterministic discrete-event substrate (engine, CPU model,
//!   stages, network, cost calibration).
//! * [`metrics`] — histograms, breakdowns, time series.
//! * [`sketch`] — the Space-Saving heavy-edge sampler.
//! * [`partition`] — transfer scores, the pairwise coordination protocol,
//!   and partitioning baselines.
//! * [`seda`] — the queuing model, Theorem 2's allocator, the §5.4
//!   estimator, and the Fig. 7 emulator.
//! * [`runtime`] — the Orleans-like virtual actor runtime.
//! * [`workloads`] — Halo Presence, Heartbeat, and the counter benchmark.
//! * [`core`] — the ActOp controllers and the experiment harness.
//! * [`verify`] — analytic queueing oracles, trace lifecycle invariants,
//!   and the metamorphic scenario fuzzer.
//!
//! # Examples
//!
//! ```
//! use actop::prelude::*;
//!
//! // A 10-server cluster running the counter app with ActOp's thread agent.
//! let workload = actop::workloads::uniform::counter(
//!     2_000.0,
//!     Nanos::from_secs(2),
//!     7,
//! );
//! let (app, driver) = UniformWorkload::build(workload);
//! let mut cluster = Cluster::new(RuntimeConfig::paper_testbed(7), app);
//! let mut engine: Engine<Cluster> = Engine::new();
//! driver.install(&mut engine);
//! install_actop(&mut engine, 10, &ActOpConfig::threads_only());
//! let summary = run_steady_state(
//!     &mut engine,
//!     &mut cluster,
//!     Nanos::from_secs(1),
//!     Nanos::from_secs(1),
//! );
//! assert!(summary.completed > 0);
//! ```

pub use actop_core as core;
pub use actop_metrics as metrics;
pub use actop_partition as partition;
pub use actop_runtime as runtime;
pub use actop_seda as seda;
pub use actop_sim as sim;
pub use actop_sketch as sketch;
pub use actop_verify as verify;
pub use actop_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use actop_core::controllers::{
        install_actop, ActOpConfig, PartitionAgentConfig, ThreadAgentConfig,
    };
    pub use actop_core::experiment::{run_steady_state, RunSummary};
    pub use actop_partition::PartitionConfig;
    pub use actop_runtime::{
        ActorId, AppLogic, Call, Cluster, Outcome, PlacementPolicy, Reaction, RuntimeConfig,
    };
    pub use actop_sim::{CostModel, DetRng, Engine, Nanos};
    pub use actop_workloads::{HaloConfig, HaloWorkload, UniformConfig, UniformWorkload};
}
